//! Synthetic workloads used by the motivation figures and tests.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use tiering_trace::{fill_batch_via_next_op, Access, AccessBatch, Op, Workload};

use crate::layout::LayoutBuilder;
use crate::zipf::ShiftableZipf;
use crate::Region;

/// A minimal skewed workload: each op touches one page drawn from a
/// (shiftable) Zipf distribution over the page space.
///
/// This is the distilled version of the hotness-tracking problem and the
/// workhorse for unit and property tests of the policies.
#[derive(Debug)]
pub struct ZipfPageWorkload {
    zipf: ShiftableZipf,
    region: Region,
    rng: SmallRng,
    ops_remaining: u64,
    shift_at_ns: Option<u64>,
    shift_fraction: f64,
    wake_at_ns: Option<u64>,
    wake_theta: f64,
    wake_cpu_ns: u64,
    cpu_ns: u64,
    name: String,
}

impl ZipfPageWorkload {
    /// `pages` pages, Zipf exponent `theta`, `ops` operations.
    pub fn new(pages: usize, theta: f64, ops: u64, seed: u64) -> Self {
        let mut layout = LayoutBuilder::new();
        let region = layout.alloc(pages as u64 * 4096);
        Self {
            zipf: ShiftableZipf::shuffled_from_seed(pages, theta, seed ^ 0x9E37_79B9),
            region,
            rng: SmallRng::seed_from_u64(seed),
            ops_remaining: ops,
            shift_at_ns: None,
            shift_fraction: 0.0,
            wake_at_ns: None,
            wake_theta: 0.0,
            wake_cpu_ns: 0,
            cpu_ns: 50,
            name: format!("zipf-{pages}p-t{theta}"),
        }
    }

    /// Schedules a single hotness shift: at `at_ns`, `fraction` of the hot
    /// ranks are reassigned to cold items.
    #[must_use]
    pub fn with_shift(mut self, at_ns: u64, fraction: f64) -> Self {
        self.shift_at_ns = Some(at_ns);
        self.shift_fraction = fraction;
        self
    }

    /// Overrides the fixed compute time per op (default 50 ns). High values
    /// model a mostly-idle tenant whose accesses arrive slowly.
    #[must_use]
    pub fn with_cpu_ns(mut self, cpu_ns: u64) -> Self {
        self.cpu_ns = cpu_ns;
        self
    }

    /// Schedules a "wake-up": at `at_ns` the popularity distribution is
    /// rebuilt with exponent `theta` and the per-op compute time drops to
    /// `cpu_ns` — a mostly-idle tenant starting a hot, intense phase. This
    /// is the time-trigger behind the paper-§7 co-location demo.
    #[must_use]
    pub fn with_wakeup(mut self, at_ns: u64, theta: f64, cpu_ns: u64) -> Self {
        self.wake_at_ns = Some(at_ns);
        self.wake_theta = theta;
        self.wake_cpu_ns = cpu_ns;
        self
    }
}

impl Workload for ZipfPageWorkload {
    fn next_op(&mut self, now_ns: u64, out: &mut Vec<Access>) -> Option<Op> {
        if self.ops_remaining == 0 {
            return None;
        }
        if let Some(at) = self.shift_at_ns {
            if now_ns >= at {
                let mut shift_rng = SmallRng::seed_from_u64(0x5117F7ED);
                self.zipf.shift(self.shift_fraction, &mut shift_rng);
                self.shift_at_ns = None;
            }
        }
        if let Some(at) = self.wake_at_ns {
            if now_ns >= at {
                let pages = self.zipf.len();
                self.zipf = ShiftableZipf::shuffled_from_seed(pages, self.wake_theta, 0x3A6E_0B17);
                self.cpu_ns = self.wake_cpu_ns;
                self.wake_at_ns = None;
            }
        }
        self.ops_remaining -= 1;
        let page = self.zipf.sample(&mut self.rng) as u64;
        out.push(Access::read(self.region.addr(page * 4096)));
        Some(Op::read(self.cpu_ns))
    }

    fn footprint_bytes(&self) -> u64 {
        self.region.bytes()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn batchable_now(&self) -> bool {
        // Time-independent once every scheduled trigger (shift, wake-up)
        // has fired.
        self.shift_at_ns.is_none() && self.wake_at_ns.is_none()
    }

    fn fill_batch(&mut self, now_ns: u64, max_ops: usize, batch: &mut AccessBatch) -> usize {
        // Batch fast path: the per-op trigger checks, region base, and rank
        // table are hoisted out of the loop. Only valid while batchable —
        // fall back to the generic path when a trigger is still pending so
        // it is evaluated against fresh time every op.
        if !self.batchable_now() {
            return fill_batch_via_next_op(self, now_ns, max_ops, batch);
        }
        let n = max_ops.min(self.ops_remaining as usize);
        self.ops_remaining -= n as u64;
        let op = Op::read(self.cpu_ns);
        for _ in 0..n {
            let page = self.zipf.sample(&mut self.rng) as u64;
            batch.push_single(op, Access::read(self.region.addr(page * 4096)));
        }
        n
    }
}

/// A page accessed at a fixed rate for a fixed duration, then never again —
/// the paper's Figure 3(a) EMA-lag microbenchmark ("a page accessed 50 times
/// per minute for 10 minutes").
#[derive(Debug)]
pub struct PulseWorkload {
    region: Region,
    /// Accesses per simulated minute while active.
    rate_per_min: u64,
    active_minutes: u64,
    total_minutes: u64,
    emitted: u64,
}

impl PulseWorkload {
    /// A single page touched `rate_per_min` times per minute for
    /// `active_minutes`, followed by silence until `total_minutes`.
    pub fn new(rate_per_min: u64, active_minutes: u64, total_minutes: u64) -> Self {
        let mut layout = LayoutBuilder::new();
        let region = layout.alloc(4096);
        Self {
            region,
            rate_per_min,
            active_minutes,
            total_minutes,
            emitted: 0,
        }
    }

    /// Simulated nanoseconds between consecutive accesses while active.
    pub fn access_gap_ns(&self) -> u64 {
        60_000_000_000 / self.rate_per_min
    }

    /// Total number of accesses the pulse emits.
    pub fn total_accesses(&self) -> u64 {
        self.rate_per_min * self.active_minutes
    }

    /// Total simulated duration covered (including the silent tail).
    pub fn duration_ns(&self) -> u64 {
        self.total_minutes * 60_000_000_000
    }
}

impl Workload for PulseWorkload {
    fn next_op(&mut self, _now_ns: u64, out: &mut Vec<Access>) -> Option<Op> {
        if self.emitted >= self.total_accesses() {
            return None;
        }
        self.emitted += 1;
        out.push(Access::read(self.region.base()));
        // The op's CPU time *is* the gap between accesses, so the pulse
        // plays out at the right simulated rate.
        Some(Op::read(self.access_gap_ns()))
    }

    fn footprint_bytes(&self) -> u64 {
        self.region.bytes()
    }

    fn name(&self) -> &str {
        "pulse"
    }

    fn batchable_now(&self) -> bool {
        true // pacing comes from op cpu time, not from reading the clock
    }
}

/// A pure sequential scan over the whole footprint, repeated for a number of
/// passes — the classic one-time-only access pattern that pollutes
/// recency-based tiers (paper §7, "One-time-only Access Patterns").
#[derive(Debug)]
pub struct SequentialScanWorkload {
    region: Region,
    stride: u64,
    passes_remaining: u64,
    cursor: u64,
}

impl SequentialScanWorkload {
    /// Scans `pages` pages `passes` times at one access per `stride` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn new(pages: u64, passes: u64, stride: u64) -> Self {
        assert!(stride > 0, "stride must be positive");
        let mut layout = LayoutBuilder::new();
        let region = layout.alloc(pages * 4096);
        Self {
            region,
            stride,
            passes_remaining: passes,
            cursor: 0,
        }
    }
}

impl Workload for SequentialScanWorkload {
    fn next_op(&mut self, _now_ns: u64, out: &mut Vec<Access>) -> Option<Op> {
        if self.passes_remaining == 0 {
            return None;
        }
        out.push(Access::read(self.region.addr(self.cursor)));
        self.cursor += self.stride;
        if self.cursor >= self.region.bytes() {
            self.cursor = 0;
            self.passes_remaining -= 1;
        }
        Some(Op::compute(20))
    }

    fn footprint_bytes(&self) -> u64 {
        self.region.bytes()
    }

    fn name(&self) -> &str {
        "seq-scan"
    }

    fn batchable_now(&self) -> bool {
        true
    }

    fn fill_batch(&mut self, _now_ns: u64, max_ops: usize, batch: &mut AccessBatch) -> usize {
        let bytes = self.region.bytes();
        let op = Op::compute(20);
        let mut emitted = 0;
        while emitted < max_ops {
            if self.passes_remaining == 0 {
                break;
            }
            batch.push_single(op, Access::read(self.region.addr(self.cursor)));
            self.cursor += self.stride;
            if self.cursor >= bytes {
                self.cursor = 0;
                self.passes_remaining -= 1;
            }
            emitted += 1;
        }
        emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiering_mem::PageSize;

    fn drain(w: &mut dyn Workload, max: usize) -> Vec<Access> {
        let mut all = Vec::new();
        let mut buf = Vec::new();
        for _ in 0..max {
            buf.clear();
            if w.next_op(0, &mut buf).is_none() {
                break;
            }
            all.extend_from_slice(&buf);
        }
        all
    }

    #[test]
    fn zipf_workload_is_skewed() {
        let mut w = ZipfPageWorkload::new(1000, 0.99, 20_000, 1);
        let accesses = drain(&mut w, 30_000);
        assert_eq!(accesses.len(), 20_000);
        let mut counts = std::collections::HashMap::new();
        for a in &accesses {
            *counts.entry(a.page(PageSize::Base4K)).or_insert(0u32) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        assert!(max > 200, "hottest page only {max} accesses");
    }

    #[test]
    fn zipf_workload_deterministic() {
        let mut a = ZipfPageWorkload::new(100, 0.9, 1000, 42);
        let mut b = ZipfPageWorkload::new(100, 0.9, 1000, 42);
        assert_eq!(drain(&mut a, 2000), drain(&mut b, 2000));
    }

    #[test]
    fn zipf_shift_changes_hot_page() {
        let mut w = ZipfPageWorkload::new(500, 1.2, 100_000, 9).with_shift(1, 1.0);
        let mut buf = Vec::new();
        // First op at now=0: no shift yet.
        w.next_op(0, &mut buf).unwrap();
        let before_hot = w.zipf.item_at_rank(0);
        // Advance time past the shift point.
        buf.clear();
        w.next_op(10, &mut buf).unwrap();
        let after_hot = w.zipf.item_at_rank(0);
        assert_ne!(before_hot, after_hot, "rank-0 item should be reassigned");
    }

    #[test]
    fn pulse_emits_exact_count_and_rate() {
        let mut w = PulseWorkload::new(50, 10, 20);
        assert_eq!(w.total_accesses(), 500);
        assert_eq!(w.access_gap_ns(), 1_200_000_000);
        let accesses = drain(&mut w, 1000);
        assert_eq!(accesses.len(), 500);
        assert!(accesses.iter().all(|a| a.addr == accesses[0].addr));
    }

    #[test]
    fn scan_touches_every_page_in_order() {
        let mut w = SequentialScanWorkload::new(4, 1, 4096);
        let accesses = drain(&mut w, 100);
        let pages: Vec<u64> = accesses
            .iter()
            .map(|a| a.page(PageSize::Base4K).0)
            .collect();
        assert_eq!(pages, vec![0, 1, 2, 3]);
    }

    #[test]
    fn scan_repeats_for_passes() {
        let mut w = SequentialScanWorkload::new(2, 3, 4096);
        let accesses = drain(&mut w, 100);
        assert_eq!(accesses.len(), 6);
    }
}
