//! Trace replay: on-disk access traces as ordinary [`Workload`]s, plus the
//! recording adapter that captures any generator to a trace file.
//!
//! [`TraceReplayWorkload`] streams a file written by
//! [`TraceWriter`](tiering_trace::TraceWriter) (format:
//! `docs/TRACE_FORMAT.md`) back into the engine. The trace's chunk frames
//! are columnar in exactly the [`AccessBatch`] structure-of-arrays layout,
//! so [`fill_batch`](Workload::fill_batch) copies decoded columns straight
//! into the batch through the `open_op`/`push_access`/`commit_open_op`
//! direct-fill path — one chunk resident at a time, so traces bigger than
//! RAM replay in O(chunk) memory
//! ([`max_resident_bytes`](TraceReplayWorkload::max_resident_bytes) meters
//! it).
//!
//! Replay reports the *recorded* workload's name (stored in the trace
//! header) and footprint, so a replayed scenario resolves the same tier
//! sizing and produces the same `SimReport` fingerprint as running the
//! generator directly — the replay-equivalence suite locks this.

use std::fs::File;
use std::io::BufReader;
use std::path::Path;

use tiering_trace::{
    Access, AccessBatch, Op, TraceError, TraceReader, TraceSummary, TraceWriter, Workload,
};

/// Records up to `max_ops` operations of `workload` into a trace file at
/// `path`, chunked every `chunk_ops` operations.
///
/// Operations are pulled through [`Workload::next_op`] at simulated time
/// zero, so clock-driven behaviour (e.g. a scheduled hot-set shift) is
/// captured as of t=0. For op-counter-driven workloads — every suite
/// workload in its default configuration — the recorded stream is exactly
/// the stream an engine run would pull, which is what makes record→replay
/// bit-identical.
///
/// Returns the totals actually written (fewer ops than `max_ops` if the
/// workload ran out first).
pub fn record_workload<W: Workload + ?Sized>(
    workload: &mut W,
    max_ops: u64,
    path: impl AsRef<Path>,
    chunk_ops: usize,
) -> Result<TraceSummary, TraceError> {
    let mut writer = TraceWriter::create(path, workload.name(), workload.footprint_bytes())?
        .with_chunk_ops(chunk_ops);
    let mut accesses = Vec::new();
    for _ in 0..max_ops {
        accesses.clear();
        match workload.next_op(0, &mut accesses) {
            Some(op) => writer.push_op(op, &accesses)?,
            None => break,
        }
    }
    let (summary, _) = writer.finish()?;
    Ok(summary)
}

/// A [`Workload`] that replays a recorded trace file chunk by chunk.
///
/// Construction ([`open`](Self::open)) verifies the whole file first —
/// checksums, counts, layout — so corruption surfaces as a typed
/// [`TraceError`] up front rather than mid-simulation, then reopens the
/// file for streaming. Replay itself holds one decoded chunk at a time.
#[derive(Debug)]
pub struct TraceReplayWorkload {
    reader: TraceReader<BufReader<File>>,
    /// Index of the next unserved op within the current chunk.
    cursor: usize,
    /// Set once the final chunk has been fully served.
    exhausted: bool,
}

impl TraceReplayWorkload {
    /// Opens and fully verifies the trace at `path`, then positions a
    /// streaming reader at its first chunk.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let path = path.as_ref();
        TraceReader::verify_file(path)?;
        let reader = TraceReader::open(path)?;
        let mut w = Self {
            reader,
            cursor: 0,
            exhausted: false,
        };
        w.exhausted = !w.advance_chunk();
        Ok(w)
    }

    /// Total operations the trace holds.
    pub fn total_ops(&self) -> u64 {
        self.reader.header().total_ops
    }

    /// High-water mark of resident chunk bytes in the underlying reader:
    /// the measured O(chunk)-not-O(trace) replay-memory guarantee.
    pub fn max_resident_bytes(&self) -> usize {
        self.reader.max_resident_bytes()
    }

    /// Loads the next non-empty chunk; `false` at end of trace. The file
    /// was verified at open, so a failure here means it changed or the
    /// device failed underneath us — conditions with no recovery path
    /// mid-simulation.
    fn advance_chunk(&mut self) -> bool {
        self.cursor = 0;
        loop {
            let more = self
                .reader
                .advance()
                .expect("verified trace became unreadable during replay");
            if !more {
                return false;
            }
            if !self.reader.chunk().is_empty() {
                return true;
            }
        }
    }

    /// Ensures the cursor points at an unserved op; `false` once the trace
    /// is exhausted.
    fn ensure_op(&mut self) -> bool {
        if self.exhausted {
            return false;
        }
        if self.cursor >= self.reader.chunk().len() && !self.advance_chunk() {
            self.exhausted = true;
            return false;
        }
        true
    }
}

impl Workload for TraceReplayWorkload {
    fn next_op(&mut self, _now_ns: u64, out: &mut Vec<Access>) -> Option<Op> {
        if !self.ensure_op() {
            return None;
        }
        let chunk = self.reader.chunk();
        let (start, end) = chunk.op_access_range(self.cursor);
        out.extend((start..end).map(|i| chunk.access(i)));
        let op = chunk.op(self.cursor);
        self.cursor += 1;
        Some(op)
    }

    fn footprint_bytes(&self) -> u64 {
        self.reader.header().footprint_bytes
    }

    /// The *recorded* workload's name: replay must report under the same
    /// identity for its `SimReport` fingerprint to match the direct run.
    fn name(&self) -> &str {
        &self.reader.header().name
    }

    /// A trace is a fixed stream — nothing is clock-driven, so replay is
    /// always safe to batch.
    fn batchable_now(&self) -> bool {
        true
    }

    fn fill_batch(&mut self, _now_ns: u64, max_ops: usize, batch: &mut AccessBatch) -> usize {
        // Zero-copy SoA fill: chunk columns feed the batch columns through
        // the direct-fill path, no per-op `Vec<Access>` staging.
        let mut filled = 0;
        while filled < max_ops {
            if !self.ensure_op() {
                break;
            }
            let chunk = self.reader.chunk();
            let n = (max_ops - filled).min(chunk.len() - self.cursor);
            for idx in self.cursor..self.cursor + n {
                let start = batch.open_op();
                let (s, e) = chunk.op_access_range(idx);
                for i in s..e {
                    batch.push_access(chunk.access(i));
                }
                batch.commit_open_op(chunk.op(idx), start);
            }
            self.cursor += n;
            filled += n;
        }
        filled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ZipfPageWorkload;
    use tiering_trace::fill_batch_via_next_op;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "hybridtier-replay-test-{}-{tag}.trace",
            std::process::id()
        ))
    }

    fn zipf() -> ZipfPageWorkload {
        ZipfPageWorkload::new(512, 0.99, 400, 42)
    }

    #[test]
    fn replay_reproduces_the_recorded_stream() {
        let path = temp_path("stream");
        let summary = record_workload(&mut zipf(), 1_000, &path, 64).expect("record");
        assert_eq!(summary.ops, 400, "zipf generator ends at its op budget");

        let mut replay = TraceReplayWorkload::open(&path).expect("open");
        assert_eq!(replay.name(), zipf().name());
        assert_eq!(replay.footprint_bytes(), zipf().footprint_bytes());

        let mut original = zipf();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        loop {
            a.clear();
            b.clear();
            let op_a = original.next_op(0, &mut a);
            let op_b = replay.next_op(0, &mut b);
            assert_eq!(op_a, op_b);
            assert_eq!(a, b);
            if op_a.is_none() {
                break;
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fill_batch_equals_next_op_for_replay() {
        let path = temp_path("batch");
        record_workload(&mut zipf(), 1_000, &path, 16).expect("record");

        let mut via_next = TraceReplayWorkload::open(&path).expect("open A");
        let mut via_fill = TraceReplayWorkload::open(&path).expect("open B");
        // Odd batch size so batches straddle the 16-op chunk boundary.
        for round in 0..40 {
            let mut a = AccessBatch::with_capacity(13, 13);
            let mut b = AccessBatch::with_capacity(13, 13);
            let na = fill_batch_via_next_op(&mut via_next, 0, 13, &mut a);
            let nb = via_fill.fill_batch(0, 13, &mut b);
            assert_eq!(na, nb, "round {round}");
            assert_eq!(a.len(), b.len());
            for i in 0..a.len() {
                assert_eq!(a.op_bounds(i), b.op_bounds(i), "round {round} op {i}");
            }
            for i in 0..a.total_accesses() {
                assert_eq!(a.access(i), b.access(i), "round {round} access {i}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_memory_is_per_chunk() {
        let path = temp_path("resident");
        record_workload(
            &mut ZipfPageWorkload::new(2048, 0.8, 8_000, 7),
            8_000,
            &path,
            128,
        )
        .expect("record");
        let file_len = std::fs::metadata(&path).expect("metadata").len() as usize;

        let mut replay = TraceReplayWorkload::open(&path).expect("open");
        let mut sink = Vec::new();
        while replay.next_op(0, &mut sink).is_some() {
            sink.clear();
        }
        let resident = replay.max_resident_bytes();
        assert!(resident > 0);
        assert!(
            resident < file_len / 8,
            "resident {resident} B vs file {file_len} B — replay is not O(chunk)"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recording_stops_at_max_ops() {
        let path = temp_path("cap");
        let summary = record_workload(&mut zipf(), 100, &path, 32).expect("record");
        assert_eq!(summary.ops, 100);
        let replay = TraceReplayWorkload::open(&path).expect("open");
        assert_eq!(replay.total_ops(), 100);
        std::fs::remove_file(&path).ok();
    }
}
