//! XGBoost gradient-boosting training proxy (Criteo click logs).
//!
//! XGBoost's CPU histogram algorithm dominates training time: per boosting
//! round it scans the gradient/hessian arrays and a *subset* of feature
//! columns to build split histograms. Which columns are scanned (and which
//! row partitions are active) changes from round to round via column
//! subsampling — producing exactly the hotness churn the paper measures for
//! XGBoost in Figure 2(b) (~50% of hot pages cold within 5 minutes).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use tiering_trace::{Access, Op, Workload};

use crate::layout::{LayoutBuilder, Region};

/// Configuration of the XGBoost training proxy.
#[derive(Debug, Clone)]
pub struct XgboostConfig {
    /// Number of training rows.
    pub rows: u64,
    /// Number of feature columns.
    pub features: usize,
    /// Columns sampled per boosting round (`colsample_bytree`).
    pub columns_per_round: usize,
    /// Number of boosting rounds.
    pub rounds: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for XgboostConfig {
    fn default() -> Self {
        Self {
            rows: 400_000,
            features: 64,
            columns_per_round: 24,
            rounds: 20,
            seed: 0x9B00,
        }
    }
}

/// The XGBoost workload generator.
#[derive(Debug)]
pub struct XgboostWorkload {
    config: XgboostConfig,
    /// Column-major feature matrix: one region per feature column.
    columns: Vec<Region>,
    gradients: Region,
    hessians: Region,
    histogram: Region,
    /// Columns active this round.
    active: Vec<usize>,
    rng: SmallRng,
    round: u32,
    /// (active-column index, row chunk) progress within the round.
    col_idx: usize,
    chunk: u64,
    chunks_per_col: u64,
    footprint: u64,
}

/// Rows processed per op (one 4 KiB page of a 4-byte-per-row column).
const ROWS_PER_CHUNK: u64 = 1024;

impl XgboostWorkload {
    /// Lays out the training state and samples the first round's columns.
    ///
    /// # Panics
    ///
    /// Panics if `columns_per_round > features` or any dimension is zero.
    pub fn new(config: XgboostConfig) -> Self {
        assert!(config.rows > 0 && config.features > 0 && config.rounds > 0);
        assert!(
            config.columns_per_round <= config.features,
            "cannot sample {} of {} columns",
            config.columns_per_round,
            config.features
        );
        let mut layout = LayoutBuilder::new();
        let columns: Vec<Region> = (0..config.features)
            .map(|_| layout.alloc(config.rows * 4))
            .collect();
        let gradients = layout.alloc(config.rows * 4);
        let hessians = layout.alloc(config.rows * 4);
        let histogram = layout.alloc(64 << 10); // per-node split histograms
        let rng = SmallRng::seed_from_u64(config.seed);
        let mut w = Self {
            columns,
            gradients,
            hessians,
            histogram,
            active: Vec::new(),
            rng,
            round: 0,
            col_idx: 0,
            chunk: 0,
            chunks_per_col: config.rows.div_ceil(ROWS_PER_CHUNK),
            footprint: layout.total_bytes(),
            config,
        };
        w.sample_columns();
        w
    }

    /// Draws this round's column subset (the churn source).
    fn sample_columns(&mut self) {
        let mut all: Vec<usize> = (0..self.config.features).collect();
        all.shuffle(&mut self.rng);
        all.truncate(self.config.columns_per_round);
        self.active = all;
    }

    /// Columns active in the current round (exposed for hotness probes).
    pub fn active_columns(&self) -> &[usize] {
        &self.active
    }

    /// Current boosting round.
    pub fn round(&self) -> u32 {
        self.round
    }
}

impl Workload for XgboostWorkload {
    fn next_op(&mut self, _now_ns: u64, out: &mut Vec<Access>) -> Option<Op> {
        if self.round >= self.config.rounds {
            return None;
        }
        // One op: scan one row-chunk of one active column, reading the
        // matching gradient/hessian chunk and updating the histograms.
        let col = self.columns[self.active[self.col_idx]];
        let off = self.chunk * ROWS_PER_CHUNK * 4;
        out.push(Access::read(col.addr(off)));
        out.push(Access::read(self.gradients.addr(off)));
        out.push(Access::read(self.hessians.addr(off)));
        let hist_off = (self.chunk * 64) % self.histogram.bytes();
        out.push(Access::write(self.histogram.addr(hist_off)));

        self.chunk += 1;
        if self.chunk >= self.chunks_per_col {
            self.chunk = 0;
            self.col_idx += 1;
            if self.col_idx >= self.active.len() {
                self.col_idx = 0;
                self.round += 1;
                self.sample_columns();
            }
        }
        Some(Op::compute(2_500))
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn name(&self) -> &str {
        "xgboost"
    }

    fn batchable_now(&self) -> bool {
        true // never consults simulated time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> XgboostWorkload {
        XgboostWorkload::new(XgboostConfig {
            rows: 8_192,
            features: 16,
            columns_per_round: 4,
            rounds: 3,
            seed: 11,
        })
    }

    #[test]
    fn runs_exact_op_count() {
        let mut w = small();
        let chunks = 8_192 / ROWS_PER_CHUNK;
        let expect = 3 * 4 * chunks; // rounds × columns × chunks
        let mut buf = Vec::new();
        let mut ops = 0u64;
        while w.next_op(0, &mut buf).is_some() {
            buf.clear();
            ops += 1;
        }
        assert_eq!(ops, expect);
    }

    #[test]
    fn active_columns_change_between_rounds() {
        let mut w = small();
        let first: Vec<usize> = w.active_columns().to_vec();
        let mut buf = Vec::new();
        while w.round() == 0 {
            buf.clear();
            w.next_op(0, &mut buf);
        }
        let second: Vec<usize> = w.active_columns().to_vec();
        assert_ne!(first, second, "column subsample should differ per round");
    }

    #[test]
    fn only_active_columns_touched_within_round() {
        let mut w = small();
        let active: Vec<usize> = w.active_columns().to_vec();
        let regions: Vec<Region> = w.columns.clone();
        let mut buf = Vec::new();
        while w.round() == 0 {
            buf.clear();
            if w.next_op(0, &mut buf).is_none() {
                break;
            }
            let col_access = buf[0];
            let col = regions
                .iter()
                .position(|r| col_access.addr >= r.base() && col_access.addr < r.end())
                .expect("first access must hit a column region");
            assert!(active.contains(&col), "column {col} not in active set");
        }
    }

    #[test]
    fn gradient_reread_every_round() {
        let mut w = small();
        let grad = w.gradients;
        let mut grad_reads = 0u64;
        let mut buf = Vec::new();
        while w.next_op(0, &mut buf).is_some() {
            grad_reads += buf
                .iter()
                .filter(|a| a.addr >= grad.base() && a.addr < grad.end())
                .count() as u64;
            buf.clear();
        }
        // Gradients are read once per chunk per column per round.
        assert_eq!(grad_reads, 3 * 4 * (8_192 / ROWS_PER_CHUNK));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn rejects_oversampled_columns() {
        let _ = XgboostWorkload::new(XgboostConfig {
            rows: 100,
            features: 4,
            columns_per_round: 5,
            rounds: 1,
            seed: 0,
        });
    }
}
