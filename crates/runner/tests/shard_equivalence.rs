//! The distributed-sweep contract: union-of-shards ≡ unsharded.
//!
//! For every [`ScenarioKind`] (Single via `ScenarioMatrix`, CoLocation via
//! `CoLocationMatrix`, Fleet via `FleetMatrix`) these tests pin that
//!
//! 1. sharding a matrix N ways and merging the shard reports yields results
//!    identical to the unsharded sweep (same scenarios, same seeds, same
//!    reports, same order — and the same serialized JSON up to host wall
//!    time);
//! 2. each shard is itself serial ≡ parallel;
//! 3. merging is order-invariant;
//! 4. overlapping, missing, or inconsistent shard sets are rejected.

use tiering_mem::TierRatio;
use tiering_policies::{ObjectiveKind, PolicyKind};
use tiering_runner::{
    CoLocationMatrix, FleetMatrix, MergeError, Scenario, ScenarioMatrix, ShardSpec, ShardedSweep,
    SweepReport, SweepRunner, TenantSpec,
};
use tiering_sim::SimConfig;
use tiering_workloads::WorkloadId;

/// A small Single-kind matrix (4 scenarios — not a multiple of 3, so
/// 3-way shards are uneven).
fn single_matrix() -> ScenarioMatrix {
    ScenarioMatrix::new(SimConfig::default().with_max_ops(2_000), 0xD15C_0FEE)
        .workloads([WorkloadId::CdnCacheLib, WorkloadId::Silo])
        .policies([PolicyKind::HybridTier, PolicyKind::FirstTouch])
        .ratios([TierRatio::OneTo8])
}

/// A 2-pairing × 2-budget CoLocation matrix (4 scenarios).
fn colocation_matrix() -> CoLocationMatrix {
    CoLocationMatrix::new(SimConfig::default().with_max_sim_ns(4_000_000), 0xC0C0)
        .pairing("wakeup", Scenario::wakeup_demo_tenants())
        .pairing(
            "cdn+silo",
            vec![
                TenantSpec::suite("cdn", WorkloadId::CdnCacheLib, PolicyKind::HybridTier),
                TenantSpec::suite("silo", WorkloadId::Silo, PolicyKind::HybridTier),
            ],
        )
        .budgets([
            tiering_runner::BudgetSpec::Ratio(TierRatio::OneTo8),
            tiering_runner::BudgetSpec::Ratio(TierRatio::OneTo4),
        ])
        .rebalance_every_ns(1_000_000)
}

/// A 1-fleet × 3-objective × 2-budget Fleet matrix (6 scenarios) with the
/// canonical churn schedule.
fn fleet_matrix() -> FleetMatrix {
    let (tenants, churn) = Scenario::fleet_churn_demo_tenants();
    FleetMatrix::new(SimConfig::default().with_max_sim_ns(6_000_000), 0xF1EE7)
        .fleet("demo", tenants, churn)
        .objectives(ObjectiveKind::ALL)
        .budgets([
            tiering_runner::BudgetSpec::Ratio(TierRatio::OneTo8),
            tiering_runner::BudgetSpec::Ratio(TierRatio::OneTo4),
        ])
        .rebalance_every_ns(1_000_000)
}

/// Shards `matrix` `total` ways, runs every shard (each on its own small
/// pool), merges, and asserts the merge equals the given unsharded
/// reference — results and fingerprints both.
fn assert_union_of_shards_matches(
    kind: &str,
    total: usize,
    matrix: &[Scenario],
    unsharded: &SweepReport,
) {
    let shards: Vec<_> = ShardSpec::all(total)
        .map(|spec| ShardedSweep::new(spec, SweepRunner::new(2)).run(matrix.to_vec()))
        .collect();
    // Each shard carries exactly its slice.
    for (i, s) in shards.iter().enumerate() {
        assert_eq!(s.spec.index(), i);
        assert_eq!(s.matrix_len, matrix.len());
        assert_eq!(s.sweep.results.len(), s.spec.count_of(matrix.len()));
    }
    let merged = SweepReport::merge(shards).expect("complete shard set merges");
    assert!(
        merged.same_outcomes(unsharded),
        "{kind}: union of {total} shards != unsharded run"
    );
    for (m, u) in merged.results.iter().zip(&unsharded.results) {
        assert_eq!(m.label, u.label, "{kind}: order diverged");
        assert_eq!(m.seed, u.seed, "{kind}: sharding changed a seed");
        assert_eq!(
            m.fingerprint(),
            u.fingerprint(),
            "{kind}: fingerprint diverged for {}",
            m.label
        );
    }
}

#[test]
fn union_of_shards_equals_unsharded_single() {
    let matrix = single_matrix().build();
    let unsharded = SweepRunner::serial().run(matrix.clone());
    for total in [1, 2, 3] {
        assert_union_of_shards_matches("single", total, &matrix, &unsharded);
    }
    // More shards than scenarios: trailing shards are empty but the union
    // still reassembles exactly.
    assert_union_of_shards_matches("single", matrix.len() + 2, &matrix, &unsharded);
}

#[test]
fn union_of_shards_equals_unsharded_colocation() {
    let matrix = colocation_matrix().build();
    let unsharded = SweepRunner::serial().run(matrix.clone());
    for total in [2, 3] {
        assert_union_of_shards_matches("colocation", total, &matrix, &unsharded);
    }
}

#[test]
fn union_of_shards_equals_unsharded_fleet() {
    let matrix = fleet_matrix().build();
    assert_eq!(matrix.len(), 6, "3 objectives x 2 budgets");
    let unsharded = SweepRunner::serial().run(matrix.clone());
    for total in [2, 4] {
        assert_union_of_shards_matches("fleet", total, &matrix, &unsharded);
    }
}

#[test]
fn matrix_shard_method_matches_select_of_build() {
    let spec = ShardSpec::new(1, 3).unwrap();
    let from_method = single_matrix().shard(spec);
    let from_build = spec.select(single_matrix().build());
    assert_eq!(from_method.len(), from_build.len());
    for (a, b) in from_method.iter().zip(&from_build) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.seed, b.seed);
    }
    // And the sharded slice preserves the full-matrix seeds: entry j of
    // shard i is entry j*total+i of the canonical list.
    let full = single_matrix().build();
    for (j, s) in from_method.iter().enumerate() {
        assert_eq!(s.seed, full[spec.global_index(j)].seed);
        assert_eq!(s.label, full[spec.global_index(j)].label);
    }
}

#[test]
fn each_shard_is_serial_parallel_identical() {
    let matrix = fleet_matrix().build();
    for spec in ShardSpec::all(3) {
        let serial = ShardedSweep::new(spec, SweepRunner::serial()).run(matrix.clone());
        let parallel = ShardedSweep::new(spec, SweepRunner::new(4)).run(matrix.clone());
        assert!(
            serial.sweep.same_outcomes(&parallel.sweep),
            "shard {spec}: parallel != serial"
        );
    }
}

#[test]
fn merge_is_order_invariant() {
    let matrix = single_matrix().build();
    let shards: Vec<_> = ShardSpec::all(3)
        .map(|spec| ShardedSweep::new(spec, SweepRunner::serial()).run(matrix.clone()))
        .collect();
    let forward = SweepReport::merge(shards.clone()).unwrap();
    let mut reversed_in = shards.clone();
    reversed_in.reverse();
    let reversed = SweepReport::merge(reversed_in).unwrap();
    assert!(forward.same_outcomes(&reversed), "merge depends on order");
    // Rotated too, for good measure.
    let mut rotated_in = shards;
    rotated_in.rotate_left(1);
    let rotated = SweepReport::merge(rotated_in).unwrap();
    assert!(forward.same_outcomes(&rotated));
}

#[test]
fn merge_rejects_bad_unions() {
    let matrix = single_matrix().build();
    let shards: Vec<_> = ShardSpec::all(3)
        .map(|spec| ShardedSweep::new(spec, SweepRunner::serial()).run(matrix.clone()))
        .collect();

    assert!(matches!(
        SweepReport::merge(Vec::new()),
        Err(MergeError::Empty)
    ));

    // Missing shard.
    let missing = vec![shards[0].clone(), shards[2].clone()];
    assert!(matches!(
        SweepReport::merge(missing),
        Err(MergeError::MissingShard { index: 1 })
    ));

    // Overlapping (duplicate) shard.
    let overlap = vec![shards[0].clone(), shards[1].clone(), shards[1].clone()];
    assert!(matches!(
        SweepReport::merge(overlap),
        Err(MergeError::DuplicateShard { index: 1 })
    ));

    // Disagreeing shard counts.
    let two_way =
        ShardedSweep::new(ShardSpec::new(0, 2).unwrap(), SweepRunner::serial()).run(matrix.clone());
    assert!(matches!(
        SweepReport::merge(vec![shards[0].clone(), two_way]),
        Err(MergeError::MismatchedTotal {
            expected: 3,
            found: 2
        })
    ));

    // Disagreeing matrix lengths (a shard cut from a different matrix).
    let mut short_matrix = matrix.clone();
    short_matrix.pop();
    let foreign =
        ShardedSweep::new(ShardSpec::new(1, 3).unwrap(), SweepRunner::serial()).run(short_matrix);
    assert!(matches!(
        SweepReport::merge(vec![shards[0].clone(), foreign, shards[2].clone()]),
        Err(MergeError::MismatchedMatrixLen { .. })
    ));

    // A tampered shard (wrong result count for its slice).
    let mut truncated = shards[0].clone();
    truncated.sweep.results.pop();
    assert!(matches!(
        SweepReport::merge(vec![truncated, shards[1].clone(), shards[2].clone()]),
        Err(MergeError::WrongShardLen { index: 0, .. })
    ));
}

#[test]
fn mixed_kind_sweep_shards_too() {
    // Sharding operates on scenario lists, not matrices — a heterogeneous
    // list (all three kinds concatenated) shards and merges the same way.
    let mut matrix = single_matrix().build();
    matrix.extend(colocation_matrix().build());
    matrix.extend(fleet_matrix().build());
    let unsharded = SweepRunner::serial().run(matrix.clone());
    assert_union_of_shards_matches("mixed", 3, &matrix, &unsharded);
}
