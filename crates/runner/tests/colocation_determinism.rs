//! Co-location and dynamic fleets as sweep dimensions must behave exactly
//! like single scenarios under the parallel driver: serial ≡ parallel,
//! order independent, and per-tenant seeds stable — including
//! arrive/depart/arrive-again churn schedules under every quota
//! objective.

use tiering_mem::TierRatio;
use tiering_policies::{ObjectiveKind, PolicyKind};
use tiering_runner::{
    BudgetSpec, ChurnSpec, CoLocationMatrix, FleetMatrix, Scenario, SweepRunner, TenantSpec,
    WorkloadSpec,
};
use tiering_sim::SimConfig;
use tiering_workloads::{WorkloadId, ZipfPageWorkload};

fn colocation_matrix() -> Vec<Scenario> {
    let hot = |name: &str| {
        TenantSpec::new(
            name,
            WorkloadSpec::custom("zipf-hot", |seed| {
                Box::new(ZipfPageWorkload::new(1_500, 0.99, 12_000, seed))
            }),
            tiering_runner::PolicySpec::Kind(PolicyKind::HybridTier),
        )
    };
    let idle = |name: &str| {
        TenantSpec::new(
            name,
            WorkloadSpec::custom("zipf-idle", |seed| {
                Box::new(ZipfPageWorkload::new(3_000, 0.3, 12_000, seed).with_cpu_ns(700))
            }),
            tiering_runner::PolicySpec::Kind(PolicyKind::HybridTier),
        )
    };
    CoLocationMatrix::new(SimConfig::default().with_max_ops(12_000), 0xC0_10C8)
        .pairing("hot+idle", vec![hot("hot"), idle("idle")])
        .pairing("hot+hot", vec![hot("a"), hot("b")])
        .pairing(
            "suite-pair",
            vec![
                TenantSpec::suite("cdn", WorkloadId::CdnCacheLib, PolicyKind::HybridTier),
                TenantSpec::suite("silo", WorkloadId::Silo, PolicyKind::Memtis),
            ],
        )
        .budgets([BudgetSpec::Ratio(TierRatio::OneTo8), BudgetSpec::Pages(400)])
        .rebalance_every_ns(1_000_000)
        .build()
}

#[test]
fn matrix_builds_the_cross_product_with_distinct_seeds() {
    let scenarios = colocation_matrix();
    assert_eq!(scenarios.len(), 6, "3 pairings x 2 budgets");
    assert_eq!(scenarios[0].label, "hot+idle/1:8/co");
    assert_eq!(scenarios[1].label, "hot+idle/400pg/co");
    let seeds: std::collections::HashSet<u64> = scenarios.iter().map(|s| s.seed).collect();
    assert_eq!(seeds.len(), 6, "every scenario gets its own derived seed");
}

/// The acceptance-criterion test: a ≥2-tenant co-location matrix through
/// the parallel sweep driver, byte-identical to the serial reference.
#[test]
fn parallel_colocation_sweep_matches_serial() {
    let parallel = SweepRunner::new(4).run(colocation_matrix());
    let serial = SweepRunner::serial().run(colocation_matrix());
    assert!(
        parallel.same_outcomes(&serial),
        "parallel co-location sweep diverged from serial"
    );
    for r in &serial.results {
        let multi = r.multi.as_ref().expect("co-location detail present");
        assert_eq!(multi.tenants.len(), 2);
        assert!(
            !multi.rebalances.is_empty(),
            "{}: cadence never fired",
            r.label
        );
        for e in &multi.rebalances {
            assert_eq!(
                e.assigned(),
                multi.fast_budget_pages,
                "{}: budget leak",
                r.label
            );
        }
    }
    // Reversed submission order still yields per-scenario identical
    // outcomes (matched up by label).
    let mut reversed_scenarios = colocation_matrix();
    reversed_scenarios.reverse();
    let reversed = SweepRunner::new(4).run(reversed_scenarios);
    for r in &serial.results {
        let other = reversed.find(&r.label).expect("label present");
        assert!(r.same_outcome(other), "{} diverged on reorder", r.label);
    }
}

/// A ≥3-tenant fleet matrix with an arrive/depart/arrive-again schedule,
/// crossed with every objective and two budgets.
fn fleet_matrix() -> Vec<Scenario> {
    let tenant = |name: &str, pages: usize, theta: f64, cpu: u64| {
        TenantSpec::new(
            name,
            WorkloadSpec::custom("zipf", move |seed| {
                Box::new(ZipfPageWorkload::new(pages, theta, 15_000, seed).with_cpu_ns(cpu))
            }),
            tiering_runner::PolicySpec::Kind(PolicyKind::HybridTier),
        )
    };
    let fleet = vec![
        tenant("hot", 1_500, 0.99, 0),
        tenant("warm", 2_500, 0.7, 300),
        tenant("cold", 3_000, 0.2, 600),
    ];
    // `warm` leaves early and arrives again later (fresh slot, same name).
    let churn = vec![
        ChurnSpec::depart(9_000, "warm"),
        ChurnSpec::arrive(21_000, tenant("warm", 2_500, 0.7, 300)),
    ];
    FleetMatrix::new(SimConfig::default().with_max_ops(15_000), 0xF1EE7)
        .fleet("trio-churn", fleet, churn)
        .objectives(ObjectiveKind::ALL)
        .budgets([BudgetSpec::Ratio(TierRatio::OneTo8), BudgetSpec::Pages(500)])
        .rebalance_every_ns(1_000_000)
        .build()
}

#[test]
fn fleet_matrix_builds_the_cross_product_with_distinct_seeds() {
    let scenarios = fleet_matrix();
    assert_eq!(scenarios.len(), 6, "1 fleet x 3 objectives x 2 budgets");
    assert_eq!(scenarios[0].label, "trio-churn/proportional/1:8/fleet");
    assert_eq!(scenarios[1].label, "trio-churn/proportional/500pg/fleet");
    assert_eq!(scenarios[2].label, "trio-churn/max-min/1:8/fleet");
    assert_eq!(scenarios[5].label, "trio-churn/slo-utility/500pg/fleet");
    let seeds: std::collections::HashSet<u64> = scenarios.iter().map(|s| s.seed).collect();
    assert_eq!(seeds.len(), 6, "every scenario gets its own derived seed");
}

/// The fleet acceptance-criterion test: a 3-tenant arrive/depart fleet
/// runs under all three objectives through the parallel sweep driver,
/// byte-identical to the serial reference, with quotas provably summing
/// to the budget at every rebalance.
#[test]
fn parallel_fleet_sweep_matches_serial() {
    let parallel = SweepRunner::new(4).run(fleet_matrix());
    let serial = SweepRunner::serial().run(fleet_matrix());
    assert!(
        parallel.same_outcomes(&serial),
        "parallel fleet sweep diverged from serial"
    );
    for r in &serial.results {
        let multi = r.multi.as_ref().expect("fleet detail present");
        assert_eq!(
            multi.tenants.len(),
            4,
            "{}: 3 initial slots + 1 re-arrival slot",
            r.label
        );
        assert_eq!(multi.churn.len(), 2, "{}: churn must fire", r.label);
        assert!(
            !multi.rebalances.is_empty(),
            "{}: cadence never fired",
            r.label
        );
        for e in &multi.rebalances {
            assert_eq!(
                e.assigned(),
                multi.fast_budget_pages,
                "{}: budget leak at t={}",
                r.label,
                e.at_ns
            );
        }
        // The objective named in the label is the one that actually ran.
        let objective = r.label.split('/').nth(1).expect("label shape");
        assert!(
            multi.rebalances.iter().all(|e| e.objective == objective),
            "{}: objective mislabel",
            r.label
        );
    }
    // Reversed submission order still yields per-scenario identical
    // outcomes (matched up by label).
    let mut reversed_scenarios = fleet_matrix();
    reversed_scenarios.reverse();
    let reversed = SweepRunner::new(4).run(reversed_scenarios);
    for r in &serial.results {
        let other = reversed.find(&r.label).expect("label present");
        assert!(r.same_outcome(other), "{} diverged on reorder", r.label);
    }
}

/// Co-location scenarios mix freely with single scenarios in one sweep.
#[test]
fn mixed_single_and_colocation_sweep_is_deterministic() {
    let mk = || {
        let mut scenarios = vec![Scenario::suite(
            WorkloadId::CdnCacheLib,
            PolicyKind::HybridTier,
            TierRatio::OneTo8,
            &SimConfig::default().with_max_ops(5_000),
            3,
        )];
        scenarios.extend(colocation_matrix().into_iter().take(2));
        scenarios.extend(fleet_matrix().into_iter().take(1));
        scenarios
    };
    let a = SweepRunner::new(3).run(mk());
    let b = SweepRunner::serial().run(mk());
    assert!(a.same_outcomes(&b));
    assert!(a.results[0].multi.is_none());
    assert!(a.results[1].multi.is_some());
    assert!(
        a.results[3].multi.is_some(),
        "fleet scenario carries detail"
    );
    let json = a.to_json();
    assert!(json.contains("\"tenants\":["), "co-location JSON detail");
    assert!(json.contains("\"fairness\":"));
    assert!(json.contains("\"churn_events\":2"), "fleet churn in JSON");
}
