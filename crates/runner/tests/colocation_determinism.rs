//! Co-location as a sweep dimension must behave exactly like single
//! scenarios under the parallel driver: serial ≡ parallel, order
//! independent, and per-tenant seeds stable.

use tiering_mem::TierRatio;
use tiering_policies::PolicyKind;
use tiering_runner::{
    BudgetSpec, CoLocationMatrix, Scenario, SweepRunner, TenantSpec, WorkloadSpec,
};
use tiering_sim::SimConfig;
use tiering_workloads::{WorkloadId, ZipfPageWorkload};

fn colocation_matrix() -> Vec<Scenario> {
    let hot = |name: &str| {
        TenantSpec::new(
            name,
            WorkloadSpec::custom("zipf-hot", |seed| {
                Box::new(ZipfPageWorkload::new(1_500, 0.99, 12_000, seed))
            }),
            tiering_runner::PolicySpec::Kind(PolicyKind::HybridTier),
        )
    };
    let idle = |name: &str| {
        TenantSpec::new(
            name,
            WorkloadSpec::custom("zipf-idle", |seed| {
                Box::new(ZipfPageWorkload::new(3_000, 0.3, 12_000, seed).with_cpu_ns(700))
            }),
            tiering_runner::PolicySpec::Kind(PolicyKind::HybridTier),
        )
    };
    CoLocationMatrix::new(SimConfig::default().with_max_ops(12_000), 0xC0_10C8)
        .pairing("hot+idle", vec![hot("hot"), idle("idle")])
        .pairing("hot+hot", vec![hot("a"), hot("b")])
        .pairing(
            "suite-pair",
            vec![
                TenantSpec::suite("cdn", WorkloadId::CdnCacheLib, PolicyKind::HybridTier),
                TenantSpec::suite("silo", WorkloadId::Silo, PolicyKind::Memtis),
            ],
        )
        .budgets([BudgetSpec::Ratio(TierRatio::OneTo8), BudgetSpec::Pages(400)])
        .rebalance_every_ns(1_000_000)
        .build()
}

#[test]
fn matrix_builds_the_cross_product_with_distinct_seeds() {
    let scenarios = colocation_matrix();
    assert_eq!(scenarios.len(), 6, "3 pairings x 2 budgets");
    assert_eq!(scenarios[0].label, "hot+idle/1:8/co");
    assert_eq!(scenarios[1].label, "hot+idle/400pg/co");
    let seeds: std::collections::HashSet<u64> = scenarios.iter().map(|s| s.seed).collect();
    assert_eq!(seeds.len(), 6, "every scenario gets its own derived seed");
}

/// The acceptance-criterion test: a ≥2-tenant co-location matrix through
/// the parallel sweep driver, byte-identical to the serial reference.
#[test]
fn parallel_colocation_sweep_matches_serial() {
    let parallel = SweepRunner::new(4).run(colocation_matrix());
    let serial = SweepRunner::serial().run(colocation_matrix());
    assert!(
        parallel.same_outcomes(&serial),
        "parallel co-location sweep diverged from serial"
    );
    for r in &serial.results {
        let multi = r.multi.as_ref().expect("co-location detail present");
        assert_eq!(multi.tenants.len(), 2);
        assert!(
            !multi.rebalances.is_empty(),
            "{}: cadence never fired",
            r.label
        );
        for e in &multi.rebalances {
            assert_eq!(
                e.assigned(),
                multi.fast_budget_pages,
                "{}: budget leak",
                r.label
            );
        }
    }
    // Reversed submission order still yields per-scenario identical
    // outcomes (matched up by label).
    let mut reversed_scenarios = colocation_matrix();
    reversed_scenarios.reverse();
    let reversed = SweepRunner::new(4).run(reversed_scenarios);
    for r in &serial.results {
        let other = reversed.find(&r.label).expect("label present");
        assert!(r.same_outcome(other), "{} diverged on reorder", r.label);
    }
}

/// Co-location scenarios mix freely with single scenarios in one sweep.
#[test]
fn mixed_single_and_colocation_sweep_is_deterministic() {
    let mk = || {
        let mut scenarios = vec![Scenario::suite(
            WorkloadId::CdnCacheLib,
            PolicyKind::HybridTier,
            TierRatio::OneTo8,
            &SimConfig::default().with_max_ops(5_000),
            3,
        )];
        scenarios.extend(colocation_matrix().into_iter().take(2));
        scenarios
    };
    let a = SweepRunner::new(3).run(mk());
    let b = SweepRunner::serial().run(mk());
    assert!(a.same_outcomes(&b));
    assert!(a.results[0].multi.is_none());
    assert!(a.results[1].multi.is_some());
    let json = a.to_json();
    assert!(json.contains("\"tenants\":["), "co-location JSON detail");
    assert!(json.contains("\"fairness\":"));
}
