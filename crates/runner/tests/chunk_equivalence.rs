//! The intra-scenario parallelism contract: the chunk *plan* is part of
//! the recipe, the worker *threads* are not. For a fixed chunk count, a
//! chunked run produces byte-identical results on one worker or many; for
//! chunk count 1 (or a non-chunkable scenario) `run_chunked` is exactly
//! `run`.

use tiering_mem::TierRatio;
use tiering_policies::PolicyKind;
use tiering_runner::{Scenario, ScenarioMatrix, SweepRunner};
use tiering_sim::SimConfig;
use tiering_workloads::WorkloadId;

fn scenario(max_ops: u64) -> Scenario {
    Scenario::suite(
        WorkloadId::CdnCacheLib,
        PolicyKind::HybridTier,
        TierRatio::OneTo8,
        &SimConfig::default().with_max_ops(max_ops),
        0xC4A9_07F3,
    )
}

#[test]
fn chunk_plan_partitions_the_op_budget() {
    let s = scenario(10_007);
    let plan = s.chunk_plan(4);
    assert_eq!(plan.len(), 4);
    assert_eq!(plan.iter().sum::<u64>(), 10_007);
    // Near-equal: remainder spread one op at a time over the first chunks.
    assert_eq!(plan, vec![2_502, 2_502, 2_502, 2_501]);
    // Never more chunks than ops; never zero chunks.
    assert_eq!(s.chunk_plan(0).iter().sum::<u64>(), 10_007);
    assert_eq!(scenario(3).chunk_plan(8), vec![1, 1, 1]);
}

/// The core guarantee: same plan, any worker count → identical results.
#[test]
fn same_plan_is_worker_count_invariant() {
    let s = scenario(12_000);
    let one_worker = s.run_chunked(4, 1);
    let many_workers = s.run_chunked(4, 4);
    let excess_workers = s.run_chunked(4, 16);
    assert!(one_worker.same_outcome(&many_workers), "1 vs 4 workers");
    assert!(one_worker.same_outcome(&excess_workers), "1 vs 16 workers");
    assert_eq!(one_worker.fingerprint(), many_workers.fingerprint());
    assert_eq!(one_worker.report.ops, 12_000, "merged ops cover the budget");
    let window_ops: u64 = one_worker.report.timeline.iter().map(|p| p.ops).sum();
    assert_eq!(window_ops, 12_000, "merged timeline covers every op");
    assert!(one_worker
        .report
        .timeline
        .windows(2)
        .all(|w| w[0].t_ns < w[1].t_ns));
}

/// Different plans are different recipes — deliberately so.
#[test]
fn chunk_count_is_part_of_the_recipe() {
    let s = scenario(12_000);
    let two = s.run_chunked(2, 2);
    let four = s.run_chunked(4, 2);
    assert_eq!(two.report.ops, four.report.ops);
    assert_ne!(
        two.fingerprint(),
        four.fingerprint(),
        "chunk plans seed independent streams, outcomes must differ"
    );
}

#[test]
fn one_chunk_falls_back_to_plain_run() {
    let s = scenario(5_000);
    assert!(s.chunkable());
    let plain = s.run();
    assert!(s.run_chunked(1, 8).same_outcome(&plain));
    assert!(s.run_chunked(0, 8).same_outcome(&plain));
}

#[test]
fn non_chunkable_scenarios_run_whole() {
    // Unbounded op budget: nothing to partition.
    let unbounded = scenario(u64::MAX);
    assert!(!unbounded.chunkable());
    // Probe-enabled config: whole-run observer.
    let mut probed = scenario(4_000);
    probed.config.count_probe = true;
    assert!(!probed.chunkable());
    assert!(probed.run_chunked(4, 4).same_outcome(&probed.run()));
    // Multi-tenant kinds run whole too.
    let demo = Scenario::wakeup_demo(&SimConfig::default().with_max_sim_ns(5_000_000), 3);
    assert!(!demo.chunkable());
    let whole = demo.run_chunked(4, 4);
    assert!(whole.multi.is_some(), "fell back to the co-location engine");
}

/// The sweep-level knob: chunked sweeps are deterministic across outer
/// thread counts, and chunking composes with result-order preservation.
#[test]
fn sweep_with_intra_scenario_threads_is_deterministic() {
    let matrix = || {
        ScenarioMatrix::new(SimConfig::default().with_max_ops(6_000), 0xA5F0_5EED)
            .workloads([WorkloadId::CdnCacheLib, WorkloadId::Silo])
            .policies([PolicyKind::HybridTier, PolicyKind::FirstTouch])
            .ratios([TierRatio::OneTo8])
            .build()
    };
    let serial_outer = SweepRunner::serial()
        .with_intra_scenario_threads(3)
        .run(matrix());
    let parallel_outer = SweepRunner::new(4)
        .with_intra_scenario_threads(3)
        .run(matrix());
    assert!(serial_outer.same_outcomes(&parallel_outer));
    assert_eq!(serial_outer.results.len(), 4);
    for (r, unchunked) in serial_outer
        .results
        .iter()
        .zip(SweepRunner::serial().run(matrix()).results.iter())
    {
        assert_eq!(r.label, unchunked.label, "input order preserved");
        assert_eq!(r.report.ops, unchunked.report.ops, "same op budget");
    }
}
