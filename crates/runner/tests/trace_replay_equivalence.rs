//! The replay-equivalence contract, in the style of `batch_equivalence` /
//! `chunk_equivalence`: recording a synthetic workload to an on-disk trace
//! and replaying the file yields **bit-identical** `SimReport` fingerprints
//! to running the generator directly — across every policy in
//! `PolicyKind::COMPARED`, across engine batch sizes, and across recorder
//! chunk sizes (chunked ≡ whole). Plus the two guarantees that make replay
//! safe at scale: memory stays O(chunk) (measured, not assumed), and
//! damaged files fail typed at open, never mid-simulation.

use std::path::{Path, PathBuf};

use fleet_exec::FaultKind;
use tiering_mem::TierRatio;
use tiering_policies::PolicyKind;
use tiering_runner::{PolicySpec, Scenario, TierSpec, WorkloadSpec};
use tiering_sim::SimConfig;
use tiering_trace::{AccessBatch, TraceError, Workload};
use tiering_workloads::{build_workload, record_workload, TraceReplayWorkload, WorkloadId};

const SEED: u64 = 0xA5F0_5EED;
const OPS: u64 = 6_000;

fn tmp(tag: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("replay-eq-{tag}.trace"))
}

/// Records `id` (built with the scenario seed, as a direct run would build
/// it) to a fresh trace file.
fn record(id: WorkloadId, chunk_ops: usize, tag: &str) -> PathBuf {
    let path = tmp(tag);
    let mut w = build_workload(id, SEED);
    record_workload(w.as_mut(), OPS, &path, chunk_ops).expect("record");
    path
}

fn config(batch_ops: usize) -> SimConfig {
    SimConfig::default()
        .with_max_ops(OPS)
        .with_batch_ops(batch_ops)
}

fn direct_run(id: WorkloadId, kind: PolicyKind, batch_ops: usize) -> u64 {
    Scenario::suite(id, kind, TierRatio::OneTo8, &config(batch_ops), SEED)
        .run()
        .report
        .fingerprint()
}

fn replay_run(path: &Path, kind: PolicyKind, batch_ops: usize) -> u64 {
    Scenario::new(
        format!("replay/{}", kind.label()),
        WorkloadSpec::Trace(path.to_path_buf()),
        PolicySpec::Kind(kind),
        TierSpec::Ratio(TierRatio::OneTo8),
        &config(batch_ops),
        SEED,
    )
    .run()
    .report
    .fingerprint()
}

/// The headline guarantee: record→replay is bit-identical to the direct
/// generator run for every compared policy.
#[test]
fn replay_matches_direct_run_for_every_compared_policy() {
    let path = record(WorkloadId::CdnCacheLib, 1024, "policies");
    for kind in PolicyKind::COMPARED {
        assert_eq!(
            direct_run(WorkloadId::CdnCacheLib, kind, 64),
            replay_run(&path, kind, 64),
            "replay diverged from direct run under {}",
            kind.label()
        );
    }
}

/// Equivalence holds at every engine batch size (including degenerate
/// one-op batches and batches larger than a reader chunk).
#[test]
fn replay_matches_direct_run_across_batch_sizes() {
    let path = record(WorkloadId::CdnCacheLib, 256, "batch-sizes");
    for batch_ops in [1, 7, 64, 512] {
        assert_eq!(
            direct_run(WorkloadId::CdnCacheLib, PolicyKind::HybridTier, batch_ops),
            replay_run(&path, PolicyKind::HybridTier, batch_ops),
            "replay diverged at batch_ops={batch_ops}"
        );
    }
}

/// Chunked ≡ whole: the recorder's chunk size is invisible to the outcome.
/// Every chunking replays to the same fingerprint, which also equals the
/// direct run.
#[test]
fn reader_chunk_size_is_invisible() {
    let direct = direct_run(WorkloadId::SocialCacheLib, PolicyKind::Memtis, 64);
    for chunk_ops in [16, 64, 1024, OPS as usize] {
        let path = record(
            WorkloadId::SocialCacheLib,
            chunk_ops,
            &format!("chunk-{chunk_ops}"),
        );
        assert_eq!(
            direct,
            replay_run(&path, PolicyKind::Memtis, 64),
            "replay diverged at chunk_ops={chunk_ops}"
        );
    }
}

/// Replay memory is O(chunk), not O(trace): stream the whole file in
/// engine-sized batches and check the reader's resident high-water mark
/// against the file size.
#[test]
fn replay_memory_stays_per_chunk() {
    let path = record(WorkloadId::CdnCacheLib, 128, "resident");
    let file_len = std::fs::metadata(&path).expect("metadata").len() as usize;

    let mut replay = TraceReplayWorkload::open(&path).expect("open");
    let mut batch = AccessBatch::with_capacity(64, 256);
    let mut ops = 0u64;
    loop {
        batch.clear();
        let n = replay.fill_batch(0, 64, &mut batch);
        if n == 0 {
            break;
        }
        ops += n as u64;
    }
    assert_eq!(ops, OPS, "full trace replayed");
    let resident = replay.max_resident_bytes();
    assert!(resident > 0);
    assert!(
        resident < file_len / 8,
        "resident {resident} B vs file {file_len} B — replay is not O(chunk)"
    );
}

/// Applies one of the PR-7 fleet-executor fault shapes to a trace file:
/// `Corrupt` flips a byte mid-file, `Truncate` cuts the tail off. (The
/// byte-exact corruption matrix lives in `tiering_trace`'s own suite; this
/// level checks the same damage vocabulary through the replay entry point.)
fn damage(path: &PathBuf, kind: &FaultKind) {
    let mut bytes = std::fs::read(path).expect("read trace");
    match kind {
        FaultKind::Corrupt => {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
        }
        FaultKind::Truncate => bytes.truncate(bytes.len() * 2 / 3),
        other => panic!("not a file-damage fault: {other:?}"),
    }
    std::fs::write(path, bytes).expect("rewrite trace");
}

/// Damaged traces fail **typed at open** — replay never starts, nothing
/// panics, and no short stream is silently accepted.
#[test]
fn damaged_traces_fail_typed_at_open() {
    for (kind, tag) in [
        (FaultKind::Corrupt, "corrupt"),
        (FaultKind::Truncate, "truncate"),
    ] {
        let path = record(WorkloadId::CdnCacheLib, 64, &format!("fault-{tag}"));
        damage(&path, &kind);
        match TraceReplayWorkload::open(&path) {
            Err(
                TraceError::ChecksumMismatch { .. }
                | TraceError::Truncated { .. }
                | TraceError::CountMismatch { .. },
            ) => {}
            Ok(_) => panic!("{tag}: damaged trace was accepted"),
            Err(other) => panic!("{tag}: unexpected error {other:?}"),
        }
    }
}
