//! Golden-report regression suite: key [`SimReport`] metrics for a small
//! workload × policy matrix (and the §7 wake-up quota trajectory) are
//! snapshotted under `tests/golden/`. Any drift — an engine change, a
//! policy tweak, a workload-generator edit — fails these tests with a
//! line-level diff.
//!
//! Intentional drift: regenerate with
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test -p tiering_runner --test golden_reports
//! ```
//!
//! and commit the updated snapshots together with the change that caused
//! them.

use std::fmt::Write as _;
use std::path::PathBuf;

use fleet_exec::{sweep_coordinator, FaultKind, FaultPlan, FleetConfig};
use tiering_mem::TierRatio;
use tiering_policies::{ObjectiveKind, PolicyKind};
use tiering_runner::{Scenario, ScenarioMatrix, SweepRunner};
use tiering_sim::{ChurnKind, SimConfig};
use tiering_workloads::WorkloadId;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` against the named snapshot, or rewrites the snapshot
/// when `GOLDEN_UPDATE=1` is set.
fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("GOLDEN_UPDATE").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run with GOLDEN_UPDATE=1 to create it",
            path.display()
        )
    });
    if expected != actual {
        let mut diff = String::new();
        for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
            if e != a {
                let _ = writeln!(diff, "line {}:\n  expected: {e}\n  actual:   {a}", i + 1);
            }
        }
        let (el, al) = (expected.lines().count(), actual.lines().count());
        if el != al {
            let _ = writeln!(diff, "line count: expected {el}, actual {al}");
        }
        panic!(
            "{name} drifted from its golden snapshot.\n{diff}\
             If this change is intentional, regenerate with \
             GOLDEN_UPDATE=1 and commit the snapshot."
        );
    }
}

/// One line of key metrics per scenario — everything a behavioural
/// regression would disturb, nothing host-dependent (no wall-clock).
fn report_lines(results: &[tiering_runner::ScenarioResult]) -> String {
    let mut out = String::from(
        "# label seed ops accesses samples sim_ns p50_ns p90_ns p99_ns mean_ns \
         fast_hit_frac promotions demotions failed_promotions metadata_bytes\n",
    );
    for r in results {
        let m = &r.report;
        let _ = writeln!(
            out,
            "{} {} {} {} {} {} {} {} {} {:.3} {:.6} {} {} {} {}",
            r.label,
            r.seed,
            m.ops,
            m.accesses,
            m.samples,
            m.sim_ns,
            m.latency.p50_ns,
            m.latency.p90_ns,
            m.latency.p99_ns,
            m.latency.mean_ns,
            m.fast_hit_frac,
            m.migrations.promotions,
            m.migrations.demotions,
            m.migrations.failed_promotions,
            m.metadata_bytes,
        );
    }
    out
}

/// The single-scenario matrix: two workload families × three policy
/// families at 1:8 — small enough for CI, broad enough that engine,
/// sampler, policy, and workload regressions all surface.
#[test]
fn single_scenario_matrix_matches_golden() {
    let scenarios = ScenarioMatrix::new(SimConfig::default().with_max_ops(20_000), 0xA5F0_5EED)
        .workloads([WorkloadId::CdnCacheLib, WorkloadId::Silo])
        .policies([
            PolicyKind::HybridTier,
            PolicyKind::Memtis,
            PolicyKind::FirstTouch,
        ])
        .ratios([TierRatio::OneTo8])
        .build();
    let sweep = SweepRunner::serial().run(scenarios);
    assert_matches_golden("report_matrix.txt", &report_lines(&sweep.results));
}

/// The §7 wake-up demo's quota trajectory and per-tenant outcomes: the
/// same recipe the `multi_tenant` example and the `sec7` bench experiment
/// run, so scenario drift in co-location is caught on PRs.
#[test]
fn wakeup_quota_trajectory_matches_golden() {
    let config = SimConfig::default().with_max_sim_ns(100_000_000);
    let result = Scenario::wakeup_demo(&config, 0xA5F0_5EED).run();
    let multi = result.multi.expect("co-location detail");

    let mut out =
        String::from("# rebalance_at_ns cache_demand batch_demand cache_quota batch_quota\n");
    for e in &multi.rebalances {
        let _ = writeln!(
            out,
            "{} {} {} {} {}",
            e.at_ns, e.demands[0], e.demands[1], e.quotas[0], e.quotas[1]
        );
    }
    let _ = writeln!(out, "# tenant ops samples fast_hit_frac final_quota");
    for t in &multi.tenants {
        let _ = writeln!(
            out,
            "{} {} {} {:.6} {}",
            t.name, t.report.ops, t.report.samples, t.report.fast_hit_frac, t.final_quota_pages
        );
    }
    let _ = writeln!(out, "# fairness {:.6}", multi.fairness_index());
    assert_matches_golden("wakeup_trajectory.txt", &out);
}

/// The canonical 3-tenant churn fleet (`Scenario::fleet_churn_demo` — the
/// same recipe the `fleet_churn` example and the bench fleet sweep run),
/// snapshotted **per objective**: the full quota trajectory with live
/// masks, the churn records, per-tenant outcomes, and Jain fairness. Any
/// change to an objective's apportioning math, the churn bookkeeping, or
/// the admission/reclamation rules drifts one of these snapshots and
/// fails CI — objective math can never drift silently.
#[test]
fn fleet_churn_trajectories_match_golden() {
    let config = SimConfig::default().with_max_sim_ns(60_000_000);
    for objective in ObjectiveKind::ALL {
        let result = Scenario::fleet_churn_demo(objective, &config, 0xA5F0_5EED).run();
        let multi = result.multi.expect("fleet detail");

        let mut out = format!("# objective {}\n", objective.label());
        let _ = writeln!(out, "# rebalance_at_ns floor live demands quotas");
        for e in &multi.rebalances {
            let mask: String = e.live.iter().map(|&l| if l { '1' } else { '0' }).collect();
            let _ = writeln!(
                out,
                "{} {} {} [{}] [{}]",
                e.at_ns,
                e.floor_pages,
                mask,
                e.demands
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(","),
                e.quotas
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(","),
            );
        }
        let _ = writeln!(out, "# churn at_ns at_fleet_ops kind tenant");
        for c in &multi.churn {
            let _ = writeln!(
                out,
                "{} {} {} {}",
                c.at_ns,
                c.at_fleet_ops,
                match c.kind {
                    ChurnKind::Arrived => "arrive",
                    ChurnKind::Departed => "depart",
                },
                c.tenant,
            );
        }
        let _ = writeln!(
            out,
            "# tenant arrived_ns departed_ns ops samples fast_hit_frac initial_quota final_quota"
        );
        for t in &multi.tenants {
            let _ = writeln!(
                out,
                "{} {} {} {} {} {:.6} {} {}",
                t.name,
                t.arrived_at_ns,
                t.departed_at_ns
                    .map_or("-".to_string(), |ns| ns.to_string()),
                t.report.ops,
                t.report.samples,
                t.report.fast_hit_frac,
                t.initial_quota_pages,
                t.final_quota_pages,
            );
        }
        let _ = writeln!(out, "# fairness {:.6}", multi.fairness_index());
        assert_matches_golden(&format!("fleet_churn_{}.txt", objective.label()), &out);
    }
}

/// The canonical 3-worker / one-loss fleet-executor run: worker `w1` is
/// killed mid-shard, its shard is reassigned, and the run completes. The
/// event log uses logical timestamps (a gapless dispatch-order sequence)
/// and the scheduler visits workers in index order, so with kill faults —
/// detected by channel disconnect, never by a wall-clock deadline — the
/// whole log is deterministic and snapshottable. Any change to the
/// scheduling order, retry bookkeeping, or event vocabulary drifts this
/// golden.
#[test]
fn fleet_executor_event_log_matches_golden() {
    let matrix = || {
        ScenarioMatrix::new(SimConfig::default().with_max_ops(2_000), 0xA5F0_5EED)
            .workloads([WorkloadId::CdnCacheLib, WorkloadId::Silo])
            .policies([PolicyKind::HybridTier, PolicyKind::FirstTouch])
            .ratios([TierRatio::OneTo8])
            .build()
    };
    let fleet = sweep_coordinator(matrix, 3, FleetConfig::default())
        .with_faults(FaultPlan::new(vec![FaultKind::KillMid.on(1)]))
        .run_sweep(6)
        .expect("one loss out of three workers is recoverable");

    let reference = SweepRunner::serial().run(matrix());
    assert!(fleet.report.same_outcomes(&reference));

    let mut out = String::from("# at worker event\n");
    out.push_str(&fleet.exec.event_log());
    let _ = writeln!(
        out,
        "# workers={} shards={} retries={} timeouts={} reassignments={} \
         workers_lost={} rejected={} stale_results={}",
        fleet.exec.workers.len(),
        fleet.exec.shards,
        fleet.exec.retries,
        fleet.exec.timeouts,
        fleet.exec.reassignments,
        fleet.exec.workers_lost,
        fleet.exec.rejected,
        fleet.exec.stale_results,
    );
    assert_matches_golden("fleet_event_log.txt", &out);
}
