//! Parallel scenario runner: many simulations per invocation.
//!
//! The paper's evaluation is a *sweep* — twelve workloads × six systems ×
//! three tier ratios, plus ablations — and production CXL tiering is
//! evaluated fleet-wide across many concurrent scenarios. This crate turns
//! the engine's one-run API into that shape:
//!
//! * [`Scenario`] — one self-contained experiment: a workload spec × policy
//!   spec × tier spec × [`SimConfig`](tiering_sim::SimConfig) × seed.
//!   Scenarios are *recipes* (factories, not live objects): each run builds
//!   its workload and policy inside the executing thread, so nothing
//!   mutable crosses threads and every run is as deterministic as
//!   [`Engine::run`](tiering_sim::Engine::run) itself.
//! * [`ScenarioMatrix`] — cross-product builder for the standard
//!   workload × policy × ratio sweeps, with deterministic per-scenario
//!   seeds derived from one base seed (see [`derive_seed`]).
//! * [`TenantSpec`] / [`ScenarioKind::CoLocation`] / [`CoLocationMatrix`] —
//!   multi-tenant co-location as a first-class sweep dimension: N tenants
//!   share one fast tier under the §7 global controller, and pairings ×
//!   budgets cross-product into ordinary scenario lists (see the crate
//!   README for an authoring guide).
//! * [`FleetSpec`] / [`ChurnSpec`] / [`ScenarioKind::Fleet`] /
//!   [`FleetMatrix`] — dynamic fleets: tenants arrive and depart mid-run
//!   on an op-count schedule, the controller apportions under a pluggable
//!   quota objective
//!   ([`ObjectiveKind`](tiering_policies::ObjectiveKind): proportional,
//!   max-min, SLO-utility), and fleets × objectives × budgets
//!   cross-product into ordinary scenario lists.
//! * [`SweepRunner`] — a work-stealing thread pool over a scenario list.
//!   Results land in input order no matter which thread finishes first, so
//!   parallel output is byte-identical to serial output — asserted by this
//!   crate's tests.
//! * [`SweepReport`] — the merged results, with lookup helpers and a
//!   machine-readable JSON emitter the bench harness uses to track the
//!   perf trajectory across PRs (`BENCH_*.json`).
//! * [`ShardSpec`] / [`ShardedSweep`] / [`ShardReport`] /
//!   [`SweepReport::merge`] — distributed sweeps: any matrix partitions
//!   deterministically across hosts by round-robin over the canonical
//!   scenario order (per-scenario seeds are identical sharded or not), and
//!   merging the shard reports reproduces the unsharded results exactly —
//!   see [`ShardSpec`] and the crate README's "sharding a sweep across
//!   hosts" guide.
//!
//! # Example
//!
//! ```
//! use tiering_mem::TierRatio;
//! use tiering_policies::PolicyKind;
//! use tiering_runner::{ScenarioMatrix, SweepRunner};
//! use tiering_sim::SimConfig;
//! use tiering_workloads::WorkloadId;
//!
//! let scenarios = ScenarioMatrix::new(SimConfig::default().with_max_ops(5_000), 7)
//!     .workloads([WorkloadId::CdnCacheLib])
//!     .policies([PolicyKind::HybridTier, PolicyKind::FirstTouch])
//!     .ratios([TierRatio::OneTo8])
//!     .build();
//! let sweep = SweepRunner::new(0).run(scenarios);
//! assert_eq!(sweep.results.len(), 2);
//! assert!(sweep.results[0].report.ops > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod scenario;
mod shard;
mod sweep;

pub use scenario::{
    BudgetSpec, ChurnAction, ChurnSpec, CoLocationSpec, FleetSpec, PolicySpec, Scenario,
    ScenarioKind, ScenarioResult, TenantSpec, TierSpec, WorkloadSpec,
};
pub use shard::{MergeError, ShardError, ShardReport, ShardSpec, ShardedSweep};
pub use sweep::{CoLocationMatrix, FleetMatrix, ScenarioMatrix, SweepReport, SweepRunner};

/// Doc-tests the crate README: every Rust snippet in it must keep
/// compiling and passing under `cargo test`.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
struct ReadmeDoctests;

/// Derives the seed for scenario `index` of a sweep from the sweep's base
/// seed (SplitMix64 of `base ^ index`): deterministic, stable under
/// re-ordering, and uncorrelated between adjacent indices — so two
/// scenarios of one sweep never share a workload RNG stream by accident.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::derive_seed;

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
        let seeds: std::collections::HashSet<u64> =
            (0..1000).map(|i| derive_seed(0xA5F0_5EED, i)).collect();
        assert_eq!(seeds.len(), 1000, "seed collisions within one sweep");
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0), "base seed ignored");
    }
}
