//! Matrix builders, the parallel sweep driver, and its merged report.
//!
//! Three cross-product builders turn experiment dimensions into canonical
//! scenario lists — [`ScenarioMatrix`] (workloads × policies × ratios),
//! [`CoLocationMatrix`] (pairings × budgets), [`FleetMatrix`] (fleets ×
//! objectives × budgets) — each deriving per-scenario seeds from one base
//! seed and the scenario's position in that canonical order. Because seeds
//! are fixed at build time, any *selection* of the built list (a
//! [`ShardSpec`] slice for a multi-host run, a filtered subset, a reordered
//! copy) runs the exact same simulations; the builders' `shard(..)` methods
//! exploit this for distributed sweeps.
//!
//! [`SweepRunner`] executes any scenario list over a work-stealing pool and
//! returns a [`SweepReport`] with results **in input order** — execution
//! interleaving never leaks into the output, so serial and parallel sweeps
//! are interchangeable and shard reports merge deterministically
//! ([`SweepReport::merge`], defined in the shard module).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use tiering_mem::{LadderKind, TierRatio};
use tiering_policies::{ObjectiveKind, PolicyKind};
use tiering_sim::SimConfig;
use tiering_workloads::WorkloadId;

use crate::derive_seed;
use crate::scenario::{
    BudgetSpec, ChurnSpec, CoLocationSpec, FleetSpec, Scenario, ScenarioResult, TenantSpec,
};
use crate::shard::ShardSpec;

/// Builds the standard workload × policy × ratio cross product with
/// deterministic per-scenario seeds.
///
/// Iteration order is workload-major, then ratio, then policy — the order
/// the paper's figures tabulate — and seeds are derived from the base seed
/// and the scenario *index*, so adding a policy to the list never changes
/// the seeds of scenarios that come before it... within one build.
#[derive(Debug, Clone)]
pub struct ScenarioMatrix {
    workloads: Vec<WorkloadId>,
    policies: Vec<PolicyKind>,
    ratios: Vec<TierRatio>,
    ladders: Vec<LadderKind>,
    config: SimConfig,
    seed: u64,
    seed_mode: SeedMode,
}

/// How per-scenario seeds are assigned within a matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SeedMode {
    /// One derived seed per (workload, ratio) cell: policies at one cell are
    /// compared on *identical* access streams (the paper's protocol), while
    /// distinct cells get independent streams. The default.
    PerCell,
    /// Every scenario gets its own derived seed.
    PerScenario,
    /// Every scenario uses the base seed verbatim (the legacy harness
    /// behaviour; keeps regenerated figures comparable across PRs).
    Fixed,
}

impl ScenarioMatrix {
    /// A matrix over the given engine config and base seed.
    pub fn new(config: SimConfig, seed: u64) -> Self {
        Self {
            workloads: Vec::new(),
            policies: Vec::new(),
            ratios: vec![TierRatio::OneTo8],
            ladders: Vec::new(),
            config,
            seed,
            seed_mode: SeedMode::PerCell,
        }
    }

    /// Sets the workloads (rows).
    #[must_use]
    pub fn workloads(mut self, ids: impl IntoIterator<Item = WorkloadId>) -> Self {
        self.workloads = ids.into_iter().collect();
        self
    }

    /// Sets the policies (columns).
    #[must_use]
    pub fn policies(mut self, kinds: impl IntoIterator<Item = PolicyKind>) -> Self {
        self.policies = kinds.into_iter().collect();
        self
    }

    /// Sets the tier ratios (planes).
    #[must_use]
    pub fn ratios(mut self, ratios: impl IntoIterator<Item = TierRatio>) -> Self {
        self.ratios = ratios.into_iter().collect();
        self
    }

    /// Adds N-tier ladder presets as an extra tier axis. Ladder cells are
    /// appended *after* the ratio cross product in the canonical order (the
    /// same trick [`FleetMatrix::tenant_counts`] uses), so turning the axis
    /// on never disturbs the seeds — and therefore the results — of the
    /// existing two-tier scenarios.
    #[must_use]
    pub fn ladders(mut self, ladders: impl IntoIterator<Item = LadderKind>) -> Self {
        self.ladders = ladders.into_iter().collect();
        self
    }

    /// Gives every scenario its own derived seed instead of sharing one
    /// access stream per (workload, ratio) cell.
    #[must_use]
    pub fn independent_streams(mut self) -> Self {
        self.seed_mode = SeedMode::PerScenario;
        self
    }

    /// Uses the base seed verbatim for every scenario (the legacy harness
    /// protocol, kept so regenerated paper figures stay comparable).
    #[must_use]
    pub fn fixed_seed(mut self) -> Self {
        self.seed_mode = SeedMode::Fixed;
        self
    }

    /// Materializes the scenario list.
    pub fn build(&self) -> Vec<Scenario> {
        let planes = self.ratios.len() + self.ladders.len();
        let mut out = Vec::with_capacity(self.workloads.len() * planes * self.policies.len());
        let mut cell = 0u64;
        for &id in &self.workloads {
            for &ratio in &self.ratios {
                let cell_seed = derive_seed(self.seed, cell);
                cell += 1;
                for &kind in &self.policies {
                    let seed = match self.seed_mode {
                        SeedMode::PerCell => cell_seed,
                        SeedMode::PerScenario => derive_seed(self.seed, out.len() as u64),
                        SeedMode::Fixed => self.seed,
                    };
                    out.push(Scenario::suite(id, kind, ratio, &self.config, seed));
                }
            }
        }
        // Ladder planes come after the whole ratio cross product so that
        // enabling them leaves every existing cell's seed untouched.
        for &id in &self.workloads {
            for &ladder in &self.ladders {
                let cell_seed = derive_seed(self.seed, cell);
                cell += 1;
                for &kind in &self.policies {
                    let seed = match self.seed_mode {
                        SeedMode::PerCell => cell_seed,
                        SeedMode::PerScenario => derive_seed(self.seed, out.len() as u64),
                        SeedMode::Fixed => self.seed,
                    };
                    out.push(Scenario::suite_ladder(id, kind, ladder, &self.config, seed));
                }
            }
        }
        out
    }

    /// Materializes `spec`'s round-robin slice of the canonical scenario
    /// list. Seeds, labels, and configs are identical to the corresponding
    /// entries of [`build`](ScenarioMatrix::build) — sharding decides *where*
    /// a scenario runs, never *what* it is — so the union of all shards'
    /// results merges back into exactly the unsharded sweep
    /// (`tests/shard_equivalence.rs`).
    pub fn shard(&self, spec: ShardSpec) -> Vec<Scenario> {
        spec.select(self.build())
    }
}

/// Cross-product builder for co-location sweeps: named tenant pairings ×
/// budget specs, each cell one [`ScenarioKind::CoLocation`] scenario with a
/// seed derived from the base seed and the scenario index (tenant workload
/// seeds are derived further, per tenant — see [`Scenario::run`]).
///
/// [`ScenarioKind::CoLocation`]: crate::ScenarioKind::CoLocation
#[derive(Debug, Clone)]
pub struct CoLocationMatrix {
    pairings: Vec<(String, Vec<TenantSpec>)>,
    budgets: Vec<BudgetSpec>,
    floor_frac: f64,
    rebalance_interval_ns: u64,
    config: SimConfig,
    seed: u64,
}

impl CoLocationMatrix {
    /// A matrix over the given engine config and base seed, with the
    /// [`CoLocationSpec::new`] demo defaults (1:8 budget, 10% floor, 10 ms
    /// cadence) until overridden.
    pub fn new(config: SimConfig, seed: u64) -> Self {
        let defaults = CoLocationSpec::new(Vec::new());
        Self {
            pairings: Vec::new(),
            budgets: vec![defaults.budget],
            floor_frac: defaults.floor_frac,
            rebalance_interval_ns: defaults.rebalance_interval_ns,
            config,
            seed,
        }
    }

    /// Adds a named tenant pairing (row).
    #[must_use]
    pub fn pairing(mut self, label: impl Into<String>, tenants: Vec<TenantSpec>) -> Self {
        self.pairings.push((label.into(), tenants));
        self
    }

    /// Sets the budget specs (columns).
    #[must_use]
    pub fn budgets(mut self, budgets: impl IntoIterator<Item = BudgetSpec>) -> Self {
        self.budgets = budgets.into_iter().collect();
        self
    }

    /// Overrides the tenant floor fraction.
    #[must_use]
    pub fn floor_frac(mut self, frac: f64) -> Self {
        self.floor_frac = frac;
        self
    }

    /// Overrides the rebalance cadence.
    #[must_use]
    pub fn rebalance_every_ns(mut self, ns: u64) -> Self {
        self.rebalance_interval_ns = ns;
        self
    }

    /// Materializes the scenario list (pairing-major, then budget).
    pub fn build(&self) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(self.pairings.len() * self.budgets.len());
        for (label, tenants) in &self.pairings {
            for &budget in &self.budgets {
                let spec = CoLocationSpec::new(tenants.clone())
                    .with_budget(budget)
                    .with_floor_frac(self.floor_frac)
                    .with_rebalance_interval_ns(self.rebalance_interval_ns);
                let seed = derive_seed(self.seed, out.len() as u64);
                out.push(Scenario::co_location(
                    format!("{label}/{}/co", budget.label()),
                    spec,
                    &self.config,
                    seed,
                ));
            }
        }
        out
    }

    /// Materializes `spec`'s round-robin slice of the canonical scenario
    /// list — same seed-identity guarantee as
    /// [`ScenarioMatrix::shard`](ScenarioMatrix::shard).
    pub fn shard(&self, spec: ShardSpec) -> Vec<Scenario> {
        spec.select(self.build())
    }
}

/// Cross-product builder for dynamic-fleet sweeps: named fleets (tenants +
/// churn pattern) × quota objectives × budget specs, each cell one
/// [`ScenarioKind::Fleet`] scenario with a seed derived from the base seed
/// and the scenario index (tenant workload seeds are derived further, per
/// tenant — see [`Scenario::run`]).
///
/// [`ScenarioKind::Fleet`]: crate::ScenarioKind::Fleet
#[derive(Debug, Clone)]
pub struct FleetMatrix {
    fleets: Vec<(String, Vec<TenantSpec>, Vec<ChurnSpec>)>,
    objectives: Vec<ObjectiveKind>,
    budgets: Vec<BudgetSpec>,
    tenant_counts: Vec<usize>,
    floor_frac: f64,
    rebalance_interval_ns: u64,
    config: SimConfig,
    seed: u64,
}

impl FleetMatrix {
    /// A matrix over the given engine config and base seed, sweeping all
    /// built-in objectives at the [`FleetSpec::new`] defaults until
    /// overridden.
    pub fn new(config: SimConfig, seed: u64) -> Self {
        let defaults = FleetSpec::new(Vec::new());
        Self {
            fleets: Vec::new(),
            objectives: ObjectiveKind::ALL.to_vec(),
            budgets: vec![defaults.budget],
            tenant_counts: Vec::new(),
            floor_frac: defaults.floor_frac,
            rebalance_interval_ns: defaults.rebalance_interval_ns,
            config,
            seed,
        }
    }

    /// Adds a named fleet — initial tenants plus churn pattern (row).
    #[must_use]
    pub fn fleet(
        mut self,
        label: impl Into<String>,
        tenants: Vec<TenantSpec>,
        churn: Vec<ChurnSpec>,
    ) -> Self {
        self.fleets.push((label.into(), tenants, churn));
        self
    }

    /// Sets the quota objectives (columns; defaults to all built-ins).
    #[must_use]
    pub fn objectives(mut self, objectives: impl IntoIterator<Item = ObjectiveKind>) -> Self {
        self.objectives = objectives.into_iter().collect();
        self
    }

    /// Sets the budget specs (planes).
    #[must_use]
    pub fn budgets(mut self, budgets: impl IntoIterator<Item = BudgetSpec>) -> Self {
        self.budgets = budgets.into_iter().collect();
        self
    }

    /// Adds a tenant-count axis: for each count `n` (and each objective),
    /// the matrix appends the synthetic large-fleet scenario
    /// [`Scenario::synthetic_fleet_spec`] at `n` tenants. The axis is
    /// appended **after** the named-fleet cross product, so adding counts
    /// never disturbs the derived seeds (and hence the fingerprints) of
    /// the existing scenarios.
    #[must_use]
    pub fn tenant_counts(mut self, counts: impl IntoIterator<Item = usize>) -> Self {
        self.tenant_counts = counts.into_iter().collect();
        self
    }

    /// Overrides the tenant floor fraction.
    #[must_use]
    pub fn floor_frac(mut self, frac: f64) -> Self {
        self.floor_frac = frac;
        self
    }

    /// Overrides the rebalance cadence.
    #[must_use]
    pub fn rebalance_every_ns(mut self, ns: u64) -> Self {
        self.rebalance_interval_ns = ns;
        self
    }

    /// Materializes the scenario list (fleet-major, then objective, then
    /// budget).
    pub fn build(&self) -> Vec<Scenario> {
        let mut out =
            Vec::with_capacity(self.fleets.len() * self.objectives.len() * self.budgets.len());
        for (label, tenants, churn) in &self.fleets {
            for &objective in &self.objectives {
                for &budget in &self.budgets {
                    let spec = FleetSpec::new(tenants.clone())
                        .with_churn(churn.clone())
                        .with_objective(objective)
                        .with_budget(budget)
                        .with_floor_frac(self.floor_frac)
                        .with_rebalance_interval_ns(self.rebalance_interval_ns);
                    let seed = derive_seed(self.seed, out.len() as u64);
                    out.push(Scenario::fleet(
                        format!("{label}/{}/{}/fleet", objective.label(), budget.label()),
                        spec,
                        &self.config,
                        seed,
                    ));
                }
            }
        }
        // The tenant-count axis rides strictly after the named-fleet cross
        // product: seeds derive from `out.len()`, so existing scenarios
        // keep their identity whether or not counts are configured.
        for &n in &self.tenant_counts {
            for &objective in &self.objectives {
                let spec = Scenario::synthetic_fleet_spec(n).with_objective(objective);
                let seed = derive_seed(self.seed, out.len() as u64);
                out.push(Scenario::fleet(
                    format!("synth{n}/{}/fleet", objective.label()),
                    spec,
                    &self.config,
                    seed,
                ));
            }
        }
        out
    }

    /// Materializes `spec`'s round-robin slice of the canonical scenario
    /// list — same seed-identity guarantee as
    /// [`ScenarioMatrix::shard`](ScenarioMatrix::shard).
    pub fn shard(&self, spec: ShardSpec) -> Vec<Scenario> {
        spec.select(self.build())
    }
}

/// A thread pool that runs a list of scenarios to completion.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    threads: usize,
    intra_scenario_threads: usize,
}

impl SweepRunner {
    /// A runner over `threads` worker threads; `0` means one per available
    /// core.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        Self {
            threads,
            intra_scenario_threads: 1,
        }
    }

    /// A single-threaded runner (the serial reference the determinism tests
    /// and speedup benchmarks compare against).
    pub fn serial() -> Self {
        Self {
            threads: 1,
            intra_scenario_threads: 1,
        }
    }

    /// Splits every [`chunkable`](Scenario::chunkable) scenario into `n`
    /// deterministic op-range chunks executed by up to `n` nested worker
    /// threads ([`Scenario::run_chunked`]) — parallelism *within* a
    /// scenario, for sweeps with fewer scenarios than cores or one
    /// dominant long scenario.
    ///
    /// The chunk count is part of the recipe: results for a given `n` are
    /// byte-identical on any host at any `threads` setting, but differ
    /// from the `n = 1` (unchunked) results of the same scenarios. `0` and
    /// `1` both mean "no chunking" — the default, preserving the classic
    /// serial results. Non-chunkable scenarios (multi-tenant kinds,
    /// probe-enabled or unbounded configs) always run whole.
    #[must_use]
    pub fn with_intra_scenario_threads(mut self, n: usize) -> Self {
        self.intra_scenario_threads = n.max(1);
        self
    }

    /// Worker threads this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Chunks (and nested workers) each chunkable scenario is split into;
    /// `1` means scenarios run whole.
    pub fn intra_scenario_threads(&self) -> usize {
        self.intra_scenario_threads
    }

    /// Runs every scenario, in parallel across the pool, and returns the
    /// results **in input order** — execution interleaving never leaks into
    /// the output. Panics in a scenario propagate (the sweep fails loudly
    /// rather than returning partial results).
    pub fn run(&self, scenarios: Vec<Scenario>) -> SweepReport {
        let start = Instant::now();
        let n = scenarios.len();
        let results: Vec<Mutex<Option<ScenarioResult>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(n.max(1));

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // Work stealing by atomic cursor: threads grab the next
                    // unclaimed scenario, so long runs (PageRank at 1:16)
                    // don't serialize behind a static partition.
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let result = if self.intra_scenario_threads > 1 {
                        scenarios[idx]
                            .run_chunked(self.intra_scenario_threads, self.intra_scenario_threads)
                    } else {
                        scenarios[idx].run()
                    };
                    *results[idx].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });

        SweepReport {
            results: results
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("result slot poisoned")
                        .expect("scenario slot never filled")
                })
                .collect(),
            wall: start.elapsed(),
            threads: workers,
        }
    }
}

/// Merged output of one sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Per-scenario results, in the input scenario order.
    pub results: Vec<ScenarioResult>,
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
    /// Worker threads used.
    pub threads: usize,
}

impl SweepReport {
    /// Looks a result up by scenario label.
    pub fn find(&self, label: &str) -> Option<&ScenarioResult> {
        self.results.iter().find(|r| r.label == label)
    }

    /// Looks a suite result up by its (workload, ratio, policy) cell.
    pub fn cell(
        &self,
        id: WorkloadId,
        ratio: TierRatio,
        kind: PolicyKind,
    ) -> Option<&ScenarioResult> {
        self.find(&format!("{}/{}/{}", id.label(), ratio, kind.label()))
    }

    /// Whether two sweeps produced identical simulation outcomes (ignoring
    /// wall-clock and thread count).
    pub fn same_outcomes(&self, other: &Self) -> bool {
        self.results.len() == other.results.len()
            && self
                .results
                .iter()
                .zip(&other.results)
                .all(|(a, b)| a.same_outcome(b))
    }

    /// Serializes the sweep to a JSON object (hand-rolled; the workspace is
    /// dependency-free). Shape (full schema: `docs/BENCH_FORMAT.md`):
    ///
    /// ```json
    /// {"threads":8,"wall_s":1.25,"scenarios":[
    ///   {"label":"CDN/1:8/HybridTier","workload":"CDN","policy":"HybridTier",
    ///    "tier":"1:8","seed":123,"wall_s":0.31,"ops":1200000,"sim_ns":9,
    ///    "p50_ns":350,"mean_ns":401.2,"throughput_mops":2.9,
    ///    "fast_hit_frac":0.93,"promotions":100,"demotions":90,
    ///    "samples":63157,"metadata_bytes":40960,
    ///    "fingerprint":"91b1d3a407dbf5f2"}]}
    /// ```
    ///
    /// `"fingerprint"` is the [`ScenarioResult::fingerprint`] outcome
    /// digest (hex); every field except `"wall_s"` is deterministic for a
    /// given scenario. Co-location scenarios additionally carry
    /// `"fairness"`, `"rebalances"`, `"churn_events"`, and a `"tenants"`
    /// array with per-tenant counters and final quotas.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.results.len() * 256);
        let _ = write!(
            s,
            "{{\"threads\":{},\"wall_s\":{:.6},\"scenarios\":[",
            self.threads,
            self.wall.as_secs_f64()
        );
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"label\":{},\"workload\":{},\"policy\":{},\"tier\":{},\"seed\":{},\
                 \"wall_s\":{:.6},\"ops\":{},\"sim_ns\":{},\"p50_ns\":{},\"mean_ns\":{:.3},\
                 \"throughput_mops\":{:.6},\"fast_hit_frac\":{:.6},\"promotions\":{},\
                 \"demotions\":{},\"samples\":{},\"metadata_bytes\":{},\
                 \"fingerprint\":\"{:016x}\"",
                json_str(&r.label),
                json_str(&r.workload),
                json_str(&r.policy),
                json_str(&r.tier),
                r.seed,
                r.wall.as_secs_f64(),
                r.report.ops,
                r.report.sim_ns,
                r.report.latency.p50_ns,
                r.report.latency.mean_ns,
                r.report.throughput_mops(),
                r.report.fast_hit_frac,
                r.report.migrations.promotions,
                r.report.migrations.demotions,
                r.report.samples,
                r.report.metadata_bytes,
                r.fingerprint(),
            );
            if let Some(multi) = &r.multi {
                let _ = write!(
                    s,
                    ",\"fairness\":{:.6},\"rebalances\":{},\"churn_events\":{},\
                     \"fast_budget_pages\":{},\"tenants\":[",
                    multi.fairness_index(),
                    multi.rebalances.len(),
                    multi.churn.len(),
                    multi.fast_budget_pages,
                );
                // Large synthetic fleets would dominate the file with
                // per-tenant rows nobody reads; keep the head and record
                // how many rows were dropped.
                const MAX_TENANT_ROWS: usize = 32;
                let shown = multi.tenants.len().min(MAX_TENANT_ROWS);
                for (j, t) in multi.tenants.iter().take(shown).enumerate() {
                    if j > 0 {
                        s.push(',');
                    }
                    let _ = write!(
                        s,
                        "{{\"name\":{},\"ops\":{},\"sim_ns\":{},\"fast_hit_frac\":{:.6},\
                         \"initial_quota\":{},\"final_quota\":{},\"promotions\":{},\
                         \"demotions\":{}}}",
                        json_str(&t.name),
                        t.report.ops,
                        t.report.sim_ns,
                        t.report.fast_hit_frac,
                        t.initial_quota_pages,
                        t.final_quota_pages,
                        t.report.migrations.promotions,
                        t.report.migrations.demotions,
                    );
                }
                s.push(']');
                if multi.tenants.len() > shown {
                    let _ = write!(s, ",\"tenants_elided\":{}", multi.tenants.len() - shown);
                }
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

/// Minimal JSON string quoting (labels contain no exotic characters, but
/// escape the structural ones defensively).
fn json_str(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_matrix() -> Vec<Scenario> {
        ScenarioMatrix::new(SimConfig::default().with_max_ops(2_000), 0xA5F0_5EED)
            .workloads([WorkloadId::CdnCacheLib, WorkloadId::Silo])
            .policies([PolicyKind::HybridTier, PolicyKind::FirstTouch])
            .ratios([TierRatio::OneTo8])
            .build()
    }

    #[test]
    fn matrix_order_and_shared_streams() {
        let scenarios = small_matrix();
        assert_eq!(scenarios.len(), 4);
        assert_eq!(scenarios[0].label, "CDN/1:8/HybridTier");
        assert_eq!(scenarios[1].label, "CDN/1:8/FirstTouch");
        // Same cell → same stream seed; different cells → different seeds.
        assert_eq!(scenarios[0].seed, scenarios[1].seed);
        assert_ne!(scenarios[0].seed, scenarios[2].seed);
    }

    #[test]
    fn parallel_matches_serial_and_order_independent() {
        let parallel = SweepRunner::new(4).run(small_matrix());
        let serial = SweepRunner::serial().run(small_matrix());
        assert!(parallel.same_outcomes(&serial), "parallel != serial");
        // Reversed submission order still yields per-scenario identical
        // outcomes (matched up by label).
        let mut reversed_scenarios = small_matrix();
        reversed_scenarios.reverse();
        let reversed = SweepRunner::new(4).run(reversed_scenarios);
        for r in &serial.results {
            let other = reversed.find(&r.label).expect("label present");
            assert!(r.same_outcome(other), "{} diverged on reorder", r.label);
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let sweep = SweepRunner::new(2).run(small_matrix());
        let json = sweep.to_json();
        assert!(json.starts_with("{\"threads\":"));
        assert!(json.ends_with("]}"));
        assert_eq!(json.matches("\"label\":").count(), 4);
        assert!(json.contains("\"throughput_mops\":"));
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn more_threads_than_scenarios_is_fine() {
        let sweep = SweepRunner::new(64).run(small_matrix());
        assert_eq!(sweep.results.len(), 4);
        assert!(sweep.threads <= 4);
    }

    #[test]
    fn ladder_axis_appends_without_disturbing_seeds() {
        let base = ScenarioMatrix::new(SimConfig::default().with_max_ops(2_000), 0xA5F0_5EED)
            .workloads([WorkloadId::CdnCacheLib, WorkloadId::Silo])
            .policies([PolicyKind::HybridTier, PolicyKind::FirstTouch])
            .ratios([TierRatio::OneTo8]);
        let plain = base.clone().build();
        let extended = base.ladders([LadderKind::DramCxlNvme]).build();
        // The two-tier prefix is untouched; ladder cells come after.
        assert_eq!(extended.len(), plain.len() + 4);
        for (a, b) in plain.iter().zip(&extended) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.seed, b.seed);
        }
        let cdn = &extended[plain.len()];
        assert_eq!(cdn.label, "CDN/dram-cxl-nvme/HybridTier");
        // Policies within one ladder cell share the access stream.
        assert_eq!(extended[plain.len()].seed, extended[plain.len() + 1].seed);
    }

    #[test]
    fn ladder_scenarios_run_deterministically_on_three_tiers() {
        let scenarios = ScenarioMatrix::new(SimConfig::default().with_max_ops(2_000), 7)
            .workloads([WorkloadId::CdnCacheLib])
            .policies([PolicyKind::HybridTier, PolicyKind::NeoMem])
            .ratios([])
            .ladders([LadderKind::DramCxlNvme])
            .build();
        assert_eq!(scenarios.len(), 2);
        let a = SweepRunner::serial().run(scenarios.clone());
        let b = SweepRunner::new(2).run(scenarios);
        assert!(a.same_outcomes(&b), "ladder sweep must be deterministic");
        for r in &a.results {
            assert_eq!(r.tier, "dram-cxl-nvme");
            assert!(r.report.accesses > 0);
        }
    }

    #[test]
    fn tenant_count_axis_appends_without_disturbing_seeds() {
        let (tenants, churn) = Scenario::fleet_churn_demo_tenants();
        let base = FleetMatrix::new(SimConfig::default().with_max_ops(500), 0xF1EE7)
            .fleet("demo", tenants, churn)
            .objectives([ObjectiveKind::Proportional]);
        let plain = base.clone().build();
        let extended = base.tenant_counts([48]).build();
        assert_eq!(extended.len(), plain.len() + 1);
        for (a, b) in plain.iter().zip(&extended) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.seed, b.seed);
        }
        assert_eq!(extended.last().unwrap().label, "synth48/proportional/fleet");
    }

    #[test]
    fn synthetic_fleet_runs_and_json_truncates_the_tenant_array() {
        // Small head-count run of the large-fleet recipe: enough per-lane
        // ops that both churn events fire, small enough for a debug test.
        let scenarios = FleetMatrix::new(SimConfig::default().with_max_ops(5_000), 99)
            .objectives([ObjectiveKind::MaxMin])
            .tenant_counts([48])
            .build();
        assert_eq!(scenarios.len(), 1);
        let sweep = SweepRunner::serial().run(scenarios);
        let result = &sweep.results[0];
        let multi = result.multi.as_ref().expect("fleet scenario");
        // 48 initial tenants plus the churn arrival's fresh slot.
        assert_eq!(multi.tenants.len(), 49);
        assert!(
            multi.churn.len() >= 2,
            "depart + arrive should both fire, saw {}",
            multi.churn.len()
        );
        // Incremental mode records compact rebalance events.
        assert!(!multi.rebalances.is_empty());
        assert!(multi.rebalances.iter().all(|e| e.quotas.is_empty()));
        let json = sweep.to_json();
        assert_eq!(json.matches("\"name\":").count(), 32);
        assert!(json.contains("\"tenants_elided\":17"));
    }
}
