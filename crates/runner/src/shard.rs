//! Deterministic sharding of sweeps across hosts.
//!
//! Once a matrix spans fleets × objectives × budgets × churn schedules, a
//! single host's work-stealing pool is the bottleneck. This module makes
//! *sharding* a first-class sweep dimension with one hard guarantee:
//!
//! > **Union-of-shards ≡ unsharded.** Running a matrix as `N` shards and
//! > merging the shard reports yields exactly the results (same scenarios,
//! > same seeds, same reports, same order) as running the whole matrix on
//! > one host.
//!
//! The guarantee holds because a [`ShardSpec`] partitions the *canonical
//! scenario order* — the list the matrix's `build()` produces — by
//! round-robin (`global_index % total == index`), **after** per-scenario
//! seeds were derived from the full-matrix index. Sharding therefore never
//! changes any scenario's seed, label, or config; it only changes which
//! host runs it. `crates/runner/tests/shard_equivalence.rs` locks the
//! guarantee for every [`ScenarioKind`](crate::ScenarioKind).
//!
//! The pieces:
//!
//! * [`ShardSpec`] — `index`/`total` with the round-robin ownership rule;
//!   parses from the CLI form `i/N` (`bench --shard i/N`).
//! * [`ShardedSweep`] — runs one shard of a full matrix through the
//!   ordinary [`SweepRunner`] and tags the output with its shard identity.
//! * [`ShardReport`] + [`SweepReport::merge`] — reassembles shard outputs
//!   into one [`SweepReport`] in the canonical order, rejecting
//!   overlapping, missing, or mismatched shards ([`MergeError`]). Merging
//!   is order-invariant: hand the reports over in any order.
//!
//! The JSON-level twin (merging `BENCH_*.json` files written by `bench
//! --shard` on different hosts) lives in `hybridtier-bench::merge`; the
//! schema is documented in `docs/BENCH_FORMAT.md`.

use std::fmt;
use std::str::FromStr;

use crate::scenario::Scenario;
use crate::sweep::{SweepReport, SweepRunner};

/// Which slice of a sweep one host runs: shard `index` of `total`.
///
/// Ownership is round-robin over the canonical scenario order: shard `i`
/// of `N` owns global indices `i, i+N, i+2N, …`. Round-robin (rather than
/// contiguous chunks) keeps per-shard wall time balanced when cost varies
/// monotonically along the matrix (e.g. ratios ordered small → large).
///
/// # Examples
///
/// ```
/// use tiering_runner::ShardSpec;
///
/// let shard: ShardSpec = "1/3".parse().unwrap();
/// assert_eq!((shard.index(), shard.total()), (1, 3));
/// assert!(shard.owns(1) && shard.owns(4));
/// assert!(!shard.owns(0) && !shard.owns(2));
/// // Shard-local position j maps back to global index j*total + index.
/// assert_eq!(shard.global_index(2), 7);
/// // 10 scenarios split 3 ways: shard 1 owns {1,4,7}.
/// assert_eq!(shard.count_of(10), 3);
/// ```
///
/// Invalid specs do not construct:
///
/// ```
/// use tiering_runner::ShardSpec;
/// assert!(ShardSpec::new(3, 3).is_err()); // index out of range
/// assert!(ShardSpec::new(0, 0).is_err()); // zero shards
/// assert!("2".parse::<ShardSpec>().is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    index: usize,
    total: usize,
}

impl ShardSpec {
    /// Shard `index` of `total`; `index` must be in `0..total`.
    pub fn new(index: usize, total: usize) -> Result<Self, ShardError> {
        if total == 0 {
            return Err(ShardError::ZeroTotal);
        }
        if index >= total {
            return Err(ShardError::IndexOutOfRange { index, total });
        }
        Ok(Self { index, total })
    }

    /// The whole sweep as one shard (`0/1`) — sharding disabled.
    pub fn solo() -> Self {
        Self { index: 0, total: 1 }
    }

    /// All `total` shards, in index order — the in-process stand-in for a
    /// host fleet (see `examples/sharded_sweep.rs`).
    pub fn all(total: usize) -> impl Iterator<Item = ShardSpec> {
        (0..total).map(move |index| ShardSpec { index, total })
    }

    /// This shard's index, in `0..total`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// How many shards the sweep is split into.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Whether this shard owns the scenario at `global_index` of the
    /// canonical matrix order.
    pub fn owns(&self, global_index: usize) -> bool {
        global_index % self.total == self.index
    }

    /// The canonical (full-matrix) index of this shard's `local`-th
    /// scenario.
    pub fn global_index(&self, local: usize) -> usize {
        local * self.total + self.index
    }

    /// How many of `matrix_len` scenarios this shard owns.
    pub fn count_of(&self, matrix_len: usize) -> usize {
        (matrix_len + self.total - 1 - self.index) / self.total
    }

    /// Keeps exactly the items this shard owns, preserving canonical
    /// relative order. Works on any built scenario list (or anything else
    /// ordered like one).
    pub fn select<T>(&self, items: Vec<T>) -> Vec<T> {
        items
            .into_iter()
            .enumerate()
            .filter(|(i, _)| self.owns(*i))
            .map(|(_, item)| item)
            .collect()
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.total)
    }
}

impl FromStr for ShardSpec {
    type Err = ShardError;

    /// Parses the CLI form `i/N` (0-based: `0/3`, `1/3`, `2/3`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| ShardError::Parse(s.to_string()))?;
        let index = i
            .trim()
            .parse()
            .map_err(|_| ShardError::Parse(s.to_string()))?;
        let total = n
            .trim()
            .parse()
            .map_err(|_| ShardError::Parse(s.to_string()))?;
        Self::new(index, total)
    }
}

/// Why a [`ShardSpec`] failed to construct or parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// `total` was zero.
    ZeroTotal,
    /// `index` was not below `total`.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The shard count it had to be below.
        total: usize,
    },
    /// The string was not of the form `i/N`.
    Parse(String),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::ZeroTotal => write!(f, "shard total must be at least 1"),
            ShardError::IndexOutOfRange { index, total } => {
                write!(f, "shard index {index} out of range for {total} shards")
            }
            ShardError::Parse(s) => {
                write!(
                    f,
                    "cannot parse '{s}' as a shard spec (expected i/N, 0-based)"
                )
            }
        }
    }
}

impl std::error::Error for ShardError {}

/// Runs one shard of a full matrix through an ordinary [`SweepRunner`].
///
/// The input to [`run`](ShardedSweep::run) is always the **full** canonical
/// scenario list — every host builds the same matrix (cheap: scenarios are
/// recipes, nothing executes at build time) and the sharded sweep selects
/// its own slice. That is what makes shard assignment a pure function of
/// `(matrix, shard)` with no coordination between hosts.
#[derive(Debug, Clone, Copy)]
pub struct ShardedSweep {
    spec: ShardSpec,
    runner: SweepRunner,
}

impl ShardedSweep {
    /// A sharded sweep for `spec`, executing on `runner`'s pool.
    pub fn new(spec: ShardSpec, runner: SweepRunner) -> Self {
        Self { spec, runner }
    }

    /// Runs this shard's slice of the full `matrix` (the complete canonical
    /// scenario list) and returns the slice's results tagged with the shard
    /// identity needed to merge them back.
    pub fn run(&self, matrix: Vec<Scenario>) -> ShardReport {
        let matrix_len = matrix.len();
        let sweep = self.runner.run(self.spec.select(matrix));
        ShardReport {
            spec: self.spec,
            matrix_len,
            sweep,
        }
    }
}

/// One shard's output: an ordinary [`SweepReport`] over the shard's
/// scenarios (in canonical relative order) plus the identity needed to
/// reassemble the full sweep.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Which shard this is.
    pub spec: ShardSpec,
    /// Scenario count of the **full** matrix the shard was cut from (merge
    /// validation: all sibling shards must agree).
    pub matrix_len: usize,
    /// The shard's results, `spec.count_of(matrix_len)` of them.
    pub sweep: SweepReport,
}

/// Why [`SweepReport::merge`] rejected a set of shard reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// No shard reports were supplied.
    Empty,
    /// Two shards disagreed on the shard count.
    MismatchedTotal {
        /// Shard count of the first report.
        expected: usize,
        /// The disagreeing count.
        found: usize,
    },
    /// Two shards disagreed on the full-matrix scenario count.
    MismatchedMatrixLen {
        /// Matrix length of the first report.
        expected: usize,
        /// The disagreeing length.
        found: usize,
    },
    /// The same shard index appeared twice (overlapping shards).
    DuplicateShard {
        /// The repeated index.
        index: usize,
    },
    /// A shard index was never supplied (incomplete union).
    MissingShard {
        /// The absent index.
        index: usize,
    },
    /// A shard carried the wrong number of results for its slice.
    WrongShardLen {
        /// The offending shard index.
        index: usize,
        /// Results its slice of the matrix demands.
        expected: usize,
        /// Results it actually carried.
        found: usize,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Empty => write!(f, "no shard reports to merge"),
            MergeError::MismatchedTotal { expected, found } => {
                write!(f, "shards disagree on shard count: {expected} vs {found}")
            }
            MergeError::MismatchedMatrixLen { expected, found } => {
                write!(f, "shards disagree on matrix length: {expected} vs {found}")
            }
            MergeError::DuplicateShard { index } => {
                write!(f, "shard {index} supplied more than once (overlap)")
            }
            MergeError::MissingShard { index } => write!(f, "shard {index} missing"),
            MergeError::WrongShardLen {
                index,
                expected,
                found,
            } => write!(
                f,
                "shard {index} carries {found} results, its slice demands {expected}"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

impl SweepReport {
    /// Reassembles shard reports into the full sweep, **identical in
    /// results to the unsharded run**: scenario `g` of the merged report is
    /// result `g / total` of shard `g % total`, so results land in
    /// canonical matrix order whatever order (or on whatever hosts) the
    /// shards ran.
    ///
    /// Merging is order-invariant — pass the reports in any order — and
    /// rejects incomplete or inconsistent unions: duplicate shard indices
    /// (overlap), absent indices (missing shard), disagreeing shard counts
    /// or matrix lengths, and shards whose result count does not match
    /// their slice.
    ///
    /// The merged `wall` is the **maximum** shard wall (the wall-clock of a
    /// distributed run is its slowest host) and `threads` is the sum of
    /// shard thread counts (total workers across hosts). Both are excluded
    /// from outcome comparisons, as everywhere else in this crate.
    pub fn merge(shards: Vec<ShardReport>) -> Result<SweepReport, MergeError> {
        let first = shards.first().ok_or(MergeError::Empty)?;
        let total = first.spec.total();
        let matrix_len = first.matrix_len;

        let mut by_index: Vec<Option<ShardReport>> = (0..total).map(|_| None).collect();
        for shard in shards {
            if shard.spec.total() != total {
                return Err(MergeError::MismatchedTotal {
                    expected: total,
                    found: shard.spec.total(),
                });
            }
            if shard.matrix_len != matrix_len {
                return Err(MergeError::MismatchedMatrixLen {
                    expected: matrix_len,
                    found: shard.matrix_len,
                });
            }
            let index = shard.spec.index();
            let expected = shard.spec.count_of(matrix_len);
            let found = shard.sweep.results.len();
            if found != expected {
                return Err(MergeError::WrongShardLen {
                    index,
                    expected,
                    found,
                });
            }
            let slot = &mut by_index[index];
            if slot.is_some() {
                return Err(MergeError::DuplicateShard { index });
            }
            *slot = Some(shard);
        }
        if let Some(index) = by_index.iter().position(Option::is_none) {
            return Err(MergeError::MissingShard { index });
        }

        let mut wall = std::time::Duration::ZERO;
        let mut threads = 0;
        let mut slices: Vec<_> = by_index
            .into_iter()
            .map(|s| {
                let s = s.expect("all slots filled above");
                wall = wall.max(s.sweep.wall);
                threads += s.sweep.threads;
                s.sweep.results.into_iter()
            })
            .collect();

        let mut results = Vec::with_capacity(matrix_len);
        for g in 0..matrix_len {
            results.push(
                slices[g % total]
                    .next()
                    .expect("slice lengths validated above"),
            );
        }
        Ok(SweepReport {
            results,
            wall,
            threads,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_and_rejects() {
        assert_eq!("0/1".parse::<ShardSpec>().unwrap(), ShardSpec::solo());
        assert_eq!("2/5".parse::<ShardSpec>().unwrap().to_string(), "2/5");
        for bad in ["", "3", "/", "1/", "/2", "a/b", "3/3", "1/0", "-1/2"] {
            assert!(bad.parse::<ShardSpec>().is_err(), "accepted '{bad}'");
        }
    }

    #[test]
    fn round_robin_partition_is_exact() {
        for total in 1..=7usize {
            for matrix_len in 0..=20usize {
                let mut seen = vec![0u32; matrix_len];
                let mut count_sum = 0;
                for spec in ShardSpec::all(total) {
                    let mine = spec.select((0..matrix_len).collect::<Vec<_>>());
                    assert_eq!(mine.len(), spec.count_of(matrix_len));
                    count_sum += mine.len();
                    for (local, g) in mine.iter().enumerate() {
                        assert_eq!(spec.global_index(local), *g);
                        assert!(spec.owns(*g));
                        seen[*g] += 1;
                    }
                }
                assert_eq!(count_sum, matrix_len);
                assert!(seen.iter().all(|&c| c == 1), "partition not exact");
            }
        }
    }

    #[test]
    fn display_roundtrips() {
        for spec in ShardSpec::all(4) {
            assert_eq!(spec.to_string().parse::<ShardSpec>().unwrap(), spec);
        }
    }
}
