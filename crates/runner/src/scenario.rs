//! One experiment = one scenario.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tiering_mem::{TierConfig, TierRatio};
use tiering_policies::{build_policy, PolicyKind, TieringPolicy};
use tiering_sim::{Engine, SimConfig, SimReport};
use tiering_trace::Workload;
use tiering_workloads::{build_workload, WorkloadId};

/// Factory for a workload, given the scenario seed.
pub type WorkloadFactory = Arc<dyn Fn(u64) -> Box<dyn Workload> + Send + Sync>;

/// Factory for a policy, given the resolved tier configuration.
pub type PolicyFactory = Arc<dyn Fn(&TierConfig) -> Box<dyn TieringPolicy> + Send + Sync>;

/// Which workload a scenario runs.
#[derive(Clone)]
pub enum WorkloadSpec {
    /// A suite workload (paper Table 2) built with the scenario seed.
    Suite(WorkloadId),
    /// A custom generator; the factory is invoked with the scenario seed in
    /// the executing thread.
    Custom {
        /// Label used in reports.
        label: String,
        /// The generator factory.
        build: WorkloadFactory,
    },
}

impl WorkloadSpec {
    /// A custom workload from a factory closure.
    pub fn custom<F>(label: impl Into<String>, build: F) -> Self
    where
        F: Fn(u64) -> Box<dyn Workload> + Send + Sync + 'static,
    {
        WorkloadSpec::Custom {
            label: label.into(),
            build: Arc::new(build),
        }
    }

    /// Label used in reports and JSON output.
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Suite(id) => id.label().to_string(),
            WorkloadSpec::Custom { label, .. } => label.clone(),
        }
    }

    fn build(&self, seed: u64) -> Box<dyn Workload> {
        match self {
            WorkloadSpec::Suite(id) => build_workload(*id, seed),
            WorkloadSpec::Custom { build, .. } => build(seed),
        }
    }
}

impl fmt::Debug for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadSpec::Suite(id) => write!(f, "Suite({id:?})"),
            WorkloadSpec::Custom { label, .. } => write!(f, "Custom({label})"),
        }
    }
}

/// Which policy a scenario runs.
#[derive(Clone)]
pub enum PolicySpec {
    /// A standard policy with the crate's scaled defaults.
    Kind(PolicyKind),
    /// A custom policy (ablations, parameter sweeps); built in the
    /// executing thread from the resolved tier configuration.
    Custom {
        /// Label used in reports.
        label: String,
        /// The policy factory.
        build: PolicyFactory,
    },
}

impl PolicySpec {
    /// A custom policy from a factory closure.
    pub fn custom<F>(label: impl Into<String>, build: F) -> Self
    where
        F: Fn(&TierConfig) -> Box<dyn TieringPolicy> + Send + Sync + 'static,
    {
        PolicySpec::Custom {
            label: label.into(),
            build: Arc::new(build),
        }
    }

    /// Label used in reports and JSON output.
    pub fn label(&self) -> String {
        match self {
            PolicySpec::Kind(kind) => kind.label().to_string(),
            PolicySpec::Custom { label, .. } => label.clone(),
        }
    }

    fn build(&self, tier_cfg: &TierConfig) -> Box<dyn TieringPolicy> {
        match self {
            PolicySpec::Kind(kind) => build_policy(*kind, tier_cfg),
            PolicySpec::Custom { build, .. } => build(tier_cfg),
        }
    }
}

impl fmt::Debug for PolicySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicySpec::Kind(kind) => write!(f, "Kind({kind:?})"),
            PolicySpec::Custom { label, .. } => write!(f, "Custom({label})"),
        }
    }
}

/// How the tiers are sized for the workload footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierSpec {
    /// `TierConfig::for_footprint` at the given fast:slow ratio.
    Ratio(TierRatio),
    /// The all-fast upper-bound configuration (paper Figure 11).
    AllFast,
    /// An explicit configuration (footprint-independent; multi-tenant and
    /// sensitivity studies).
    Explicit(TierConfig),
}

impl TierSpec {
    /// Label used in reports and JSON output.
    pub fn label(&self) -> String {
        match self {
            TierSpec::Ratio(r) => r.to_string(),
            TierSpec::AllFast => "all-fast".to_string(),
            TierSpec::Explicit(_) => "explicit".to_string(),
        }
    }
}

/// One self-contained experiment: everything needed to reproduce one
/// [`SimReport`], cheap to clone and safe to run from any thread.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Display label (defaults to `workload/tier/policy`).
    pub label: String,
    /// Workload recipe.
    pub workload: WorkloadSpec,
    /// Policy recipe.
    pub policy: PolicySpec,
    /// Tier sizing.
    pub tier: TierSpec,
    /// Engine configuration.
    pub config: SimConfig,
    /// Workload seed.
    pub seed: u64,
}

impl Scenario {
    /// A scenario over standard suite components, mirroring
    /// [`run_suite_experiment`](tiering_sim::run_suite_experiment): the
    /// `AllFast` policy gets the all-fast tier configuration, everything
    /// else the ratio split.
    pub fn suite(
        id: WorkloadId,
        kind: PolicyKind,
        ratio: TierRatio,
        config: &SimConfig,
        seed: u64,
    ) -> Self {
        let tier = if kind == PolicyKind::AllFast {
            TierSpec::AllFast
        } else {
            TierSpec::Ratio(ratio)
        };
        Self {
            label: format!("{}/{}/{}", id.label(), ratio, kind.label()),
            workload: WorkloadSpec::Suite(id),
            policy: PolicySpec::Kind(kind),
            tier,
            config: config.clone(),
            seed,
        }
    }

    /// A fully custom scenario.
    pub fn new(
        label: impl Into<String>,
        workload: WorkloadSpec,
        policy: PolicySpec,
        tier: TierSpec,
        config: &SimConfig,
        seed: u64,
    ) -> Self {
        Self {
            label: label.into(),
            workload,
            policy,
            tier,
            config: config.clone(),
            seed,
        }
    }

    /// Resolves the tier configuration for a workload of `pages` pages.
    fn tier_config(&self, pages: u64) -> TierConfig {
        match self.tier {
            TierSpec::Ratio(ratio) => {
                TierConfig::for_footprint(pages, ratio, self.config.page_size)
            }
            TierSpec::AllFast => TierConfig::all_fast(pages, self.config.page_size),
            TierSpec::Explicit(cfg) => cfg,
        }
    }

    /// Builds the workload and policy and runs the engine to completion in
    /// the calling thread. Deterministic: identical scenarios produce
    /// byte-identical reports regardless of which/how many threads run
    /// their siblings.
    pub fn run(&self) -> ScenarioResult {
        let start = Instant::now();
        let mut workload = self.workload.build(self.seed);
        let pages = workload.footprint_pages(self.config.page_size);
        let tier_cfg = self.tier_config(pages);
        let mut policy = self.policy.build(&tier_cfg);
        let report =
            Engine::new(self.config.clone()).run(workload.as_mut(), policy.as_mut(), tier_cfg);
        ScenarioResult {
            label: self.label.clone(),
            workload: self.workload.label(),
            policy: self.policy.label(),
            tier: self.tier.label(),
            seed: self.seed,
            wall: start.elapsed(),
            report,
        }
    }
}

/// The outcome of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Scenario label.
    pub label: String,
    /// Workload label.
    pub workload: String,
    /// Policy label.
    pub policy: String,
    /// Tier-spec label.
    pub tier: String,
    /// Seed the workload was built with.
    pub seed: u64,
    /// Host wall-clock time of this run (excluded from `PartialEq`-based
    /// determinism checks via [`ScenarioResult::same_outcome`]).
    pub wall: Duration,
    /// The simulation report.
    pub report: SimReport,
}

impl ScenarioResult {
    /// Whether two results describe the same simulation outcome (ignores
    /// host wall-clock, which legitimately varies between runs).
    pub fn same_outcome(&self, other: &Self) -> bool {
        self.label == other.label
            && self.workload == other.workload
            && self.policy == other.policy
            && self.tier == other.tier
            && self.seed == other.seed
            && self.report == other.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_scenario_runs_and_labels() {
        let s = Scenario::suite(
            WorkloadId::CdnCacheLib,
            PolicyKind::HybridTier,
            TierRatio::OneTo8,
            &SimConfig::default().with_max_ops(2_000),
            42,
        );
        assert_eq!(s.label, "CDN/1:8/HybridTier");
        let r = s.run();
        assert_eq!(r.report.ops, 2_000);
        assert_eq!(r.policy, "HybridTier");
        assert_eq!(r.tier, "1:8");
    }

    #[test]
    fn allfast_policy_gets_allfast_tier() {
        let s = Scenario::suite(
            WorkloadId::CdnCacheLib,
            PolicyKind::AllFast,
            TierRatio::OneTo8,
            &SimConfig::default().with_max_ops(1_000),
            42,
        );
        assert_eq!(s.tier, TierSpec::AllFast);
        let r = s.run();
        assert!((r.report.fast_hit_frac - 1.0).abs() < 1e-9);
    }

    #[test]
    fn custom_specs_run() {
        use tiering_workloads::ZipfPageWorkload;
        let s = Scenario::new(
            "custom-zipf",
            WorkloadSpec::custom("zipf", |seed| {
                Box::new(ZipfPageWorkload::new(500, 0.99, 3_000, seed))
            }),
            PolicySpec::custom("ht-tuned", |cfg| {
                tiering_policies::build_policy(PolicyKind::HybridTier, cfg)
            }),
            TierSpec::Ratio(TierRatio::OneTo4),
            &SimConfig::default(),
            9,
        );
        let r = s.run();
        assert_eq!(r.workload, "zipf");
        assert_eq!(r.policy, "ht-tuned");
        assert!(r.report.ops > 0);
    }

    #[test]
    fn identical_scenarios_identical_outcomes() {
        let mk = || {
            Scenario::suite(
                WorkloadId::Silo,
                PolicyKind::Memtis,
                TierRatio::OneTo16,
                &SimConfig::default().with_max_ops(3_000),
                5,
            )
            .run()
        };
        assert!(mk().same_outcome(&mk()));
    }
}
