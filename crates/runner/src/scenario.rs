//! One experiment = one scenario.
//!
//! A [`Scenario`] is a *recipe*, not a live object: workload and policy
//! **factories** ([`WorkloadSpec`], [`PolicySpec`]) plus tier sizing
//! ([`TierSpec`] or, for multi-tenant kinds, [`BudgetSpec`]), an engine
//! [`SimConfig`], and a seed. [`Scenario::run`] builds everything inside
//! the executing thread, so recipes are cheap to clone, safe to send to
//! any thread (or serialize to another host as a matrix position — see the
//! shard module), and every run is as deterministic as the engine itself.
//!
//! Three [`ScenarioKind`]s cover the repo's experiment shapes: `Single`
//! (the classic one-workload/one-policy run), `CoLocation`
//! ([`CoLocationSpec`]: N tenants share one controller-partitioned fast
//! tier, paper §7), and `Fleet` ([`FleetSpec`]: co-location plus a
//! [`ChurnSpec`] arrival/departure schedule and a pluggable quota
//! objective). The canonical demo recipes ([`Scenario::wakeup_demo`],
//! [`Scenario::fleet_churn_demo`]) are shared verbatim by the examples,
//! the bench sweeps, and the golden suite so their trajectories can never
//! drift apart.
//!
//! Every run yields a [`ScenarioResult`]: labels, the seed, the
//! [`SimReport`] (for multi-tenant kinds, the whole-machine aggregate plus
//! per-tenant detail in [`ScenarioResult::multi`]), host wall time, and a
//! stable outcome [`fingerprint`](ScenarioResult::fingerprint) used by the
//! distributed-sweep merge layer.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tiering_mem::{LadderKind, TierConfig, TierRatio, TierTopology};
use tiering_policies::{
    build_policy, visit_policy, ControllerMode, HybridTierConfig, HybridTierPolicy, ObjectiveKind,
    PolicyKind, PolicyVisitor, TieringPolicy,
};
use tiering_sim::{
    merge_captured, CapturedRun, ChurnSchedule, Engine, MultiTenantConfig, MultiTenantEngine,
    MultiTenantReport, SimConfig, SimReport, TenantRun,
};
use tiering_trace::Workload;
use tiering_workloads::{
    build_workload, visit_workload, TraceReplayWorkload, WorkloadId, WorkloadVisitor,
    ZipfPageWorkload,
};

use crate::derive_seed;

/// Factory for a workload, given the scenario seed.
pub type WorkloadFactory = Arc<dyn Fn(u64) -> Box<dyn Workload> + Send + Sync>;

/// Factory for a policy, given the resolved tier configuration.
pub type PolicyFactory = Arc<dyn Fn(&TierConfig) -> Box<dyn TieringPolicy> + Send + Sync>;

/// Which workload a scenario runs.
#[derive(Clone)]
pub enum WorkloadSpec {
    /// A suite workload (paper Table 2) built with the scenario seed.
    Suite(WorkloadId),
    /// A custom generator; the factory is invoked with the scenario seed in
    /// the executing thread.
    Custom {
        /// Label used in reports.
        label: String,
        /// The generator factory.
        build: WorkloadFactory,
    },
    /// Replay of a recorded on-disk trace (`docs/TRACE_FORMAT.md`). The
    /// file is opened (and fully verified) in the executing thread; the
    /// scenario seed is ignored — a trace is the same stream for every
    /// seed. Labelled by the file stem.
    Trace(std::path::PathBuf),
}

impl WorkloadSpec {
    /// A custom workload from a factory closure.
    pub fn custom<F>(label: impl Into<String>, build: F) -> Self
    where
        F: Fn(u64) -> Box<dyn Workload> + Send + Sync + 'static,
    {
        WorkloadSpec::Custom {
            label: label.into(),
            build: Arc::new(build),
        }
    }

    /// Label used in reports and JSON output.
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Suite(id) => id.label().to_string(),
            WorkloadSpec::Custom { label, .. } => label.clone(),
            WorkloadSpec::Trace(path) => path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "trace".to_string()),
        }
    }

    fn build(&self, seed: u64) -> Box<dyn Workload> {
        match self {
            WorkloadSpec::Suite(id) => build_workload(*id, seed),
            WorkloadSpec::Custom { build, .. } => build(seed),
            WorkloadSpec::Trace(path) => Box::new(
                TraceReplayWorkload::open(path)
                    .unwrap_or_else(|e| panic!("cannot open trace {}: {e}", path.display())),
            ),
        }
    }
}

impl fmt::Debug for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadSpec::Suite(id) => write!(f, "Suite({id:?})"),
            WorkloadSpec::Custom { label, .. } => write!(f, "Custom({label})"),
            WorkloadSpec::Trace(path) => write!(f, "Trace({})", path.display()),
        }
    }
}

/// Which policy a scenario runs.
#[derive(Clone)]
pub enum PolicySpec {
    /// A standard policy with the crate's scaled defaults.
    Kind(PolicyKind),
    /// A custom policy (ablations, parameter sweeps); built in the
    /// executing thread from the resolved tier configuration.
    Custom {
        /// Label used in reports.
        label: String,
        /// The policy factory.
        build: PolicyFactory,
    },
}

impl PolicySpec {
    /// A custom policy from a factory closure.
    pub fn custom<F>(label: impl Into<String>, build: F) -> Self
    where
        F: Fn(&TierConfig) -> Box<dyn TieringPolicy> + Send + Sync + 'static,
    {
        PolicySpec::Custom {
            label: label.into(),
            build: Arc::new(build),
        }
    }

    /// Label used in reports and JSON output.
    pub fn label(&self) -> String {
        match self {
            PolicySpec::Kind(kind) => kind.label().to_string(),
            PolicySpec::Custom { label, .. } => label.clone(),
        }
    }

    fn build(&self, tier_cfg: &TierConfig) -> Box<dyn TieringPolicy> {
        match self {
            PolicySpec::Kind(kind) => build_policy(*kind, tier_cfg),
            PolicySpec::Custom { build, .. } => build(tier_cfg),
        }
    }
}

impl fmt::Debug for PolicySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicySpec::Kind(kind) => write!(f, "Kind({kind:?})"),
            PolicySpec::Custom { label, .. } => write!(f, "Custom({label})"),
        }
    }
}

/// How the tiers are sized for the workload footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierSpec {
    /// `TierConfig::for_footprint` at the given fast:slow ratio.
    Ratio(TierRatio),
    /// The all-fast upper-bound configuration (paper Figure 11).
    AllFast,
    /// An explicit configuration (footprint-independent; sensitivity
    /// studies).
    Explicit(TierConfig),
    /// An N-tier ladder preset sized for the workload footprint
    /// ([`LadderKind::topology`]): the run executes on the full ladder —
    /// per-rung latencies, adjacent-hop migrations, demotion cascades —
    /// instead of the binary fast/slow testbed.
    Ladder(LadderKind),
}

impl TierSpec {
    /// Label used in reports and JSON output.
    pub fn label(&self) -> String {
        match self {
            TierSpec::Ratio(r) => r.to_string(),
            TierSpec::AllFast => "all-fast".to_string(),
            TierSpec::Explicit(_) => "explicit".to_string(),
            TierSpec::Ladder(kind) => kind.label().to_string(),
        }
    }
}

/// One co-located tenant: a name plus workload and policy recipes. The
/// tenant's workload seed is derived from the scenario seed and the
/// tenant's index, so every tenant of a scenario gets an independent,
/// reproducible stream.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name (reporting and lookup; keep unique within a scenario).
    pub name: String,
    /// Workload recipe.
    pub workload: WorkloadSpec,
    /// Policy recipe.
    pub policy: PolicySpec,
}

impl TenantSpec {
    /// A tenant from arbitrary recipes.
    pub fn new(name: impl Into<String>, workload: WorkloadSpec, policy: PolicySpec) -> Self {
        Self {
            name: name.into(),
            workload,
            policy,
        }
    }

    /// A tenant running a suite workload under a standard policy.
    pub fn suite(name: impl Into<String>, id: WorkloadId, kind: PolicyKind) -> Self {
        Self::new(name, WorkloadSpec::Suite(id), PolicySpec::Kind(kind))
    }
}

/// How the shared fast budget of a co-location scenario is sized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetSpec {
    /// An explicit page count.
    Pages(u64),
    /// Combined tenant footprint divided by the ratio's slow multiple —
    /// e.g. `Ratio(1:8)` gives a fast budget holding 1/8 of everything the
    /// tenants map.
    Ratio(TierRatio),
}

impl BudgetSpec {
    /// Label used in reports and JSON output.
    pub fn label(&self) -> String {
        match self {
            BudgetSpec::Pages(p) => format!("{p}pg"),
            BudgetSpec::Ratio(r) => r.to_string(),
        }
    }

    /// Fast pages for the given combined tenant footprint, clamped so the
    /// budget can always give each of `num_tenants` tenants one page (the
    /// controller's min-one quota guarantee requires it).
    pub fn resolve(&self, combined_footprint_pages: u64, num_tenants: usize) -> u64 {
        let min = (num_tenants as u64).max(1);
        match self {
            BudgetSpec::Pages(p) => (*p).max(min),
            BudgetSpec::Ratio(r) => (combined_footprint_pages / r.slow_multiple()).max(min),
        }
    }
}

/// A complete co-location recipe: who shares the machine and how the
/// controller carves it up.
#[derive(Debug, Clone)]
pub struct CoLocationSpec {
    /// The co-located tenants (at least one; typically ≥ 2).
    pub tenants: Vec<TenantSpec>,
    /// Shared fast-tier sizing.
    pub budget: BudgetSpec,
    /// Minimum budget share any tenant keeps.
    pub floor_frac: f64,
    /// Simulated time between controller rebalances.
    pub rebalance_interval_ns: u64,
}

impl CoLocationSpec {
    /// The default budget sizing (see [`CoLocationSpec::new`]).
    pub const DEFAULT_BUDGET: BudgetSpec = BudgetSpec::Ratio(TierRatio::OneTo8);

    /// A spec with the demo defaults: 1:8 budget, 10% floor, 10 ms cadence
    /// (the floor/cadence constants live in `tiering_sim`).
    pub fn new(tenants: Vec<TenantSpec>) -> Self {
        Self {
            tenants,
            budget: Self::DEFAULT_BUDGET,
            floor_frac: tiering_sim::DEFAULT_FLOOR_FRAC,
            rebalance_interval_ns: tiering_sim::DEFAULT_REBALANCE_INTERVAL_NS,
        }
    }

    /// Overrides the budget sizing.
    #[must_use]
    pub fn with_budget(mut self, budget: BudgetSpec) -> Self {
        self.budget = budget;
        self
    }

    /// Overrides the tenant floor fraction.
    #[must_use]
    pub fn with_floor_frac(mut self, frac: f64) -> Self {
        self.floor_frac = frac;
        self
    }

    /// Overrides the rebalance cadence.
    #[must_use]
    pub fn with_rebalance_interval_ns(mut self, ns: u64) -> Self {
        self.rebalance_interval_ns = ns;
        self
    }

    /// `a+b+c` label over the tenant names.
    pub fn tenants_label(&self) -> String {
        self.tenants
            .iter()
            .map(|t| t.name.as_str())
            .collect::<Vec<_>>()
            .join("+")
    }
}

/// One scheduled fleet-composition change, as a recipe: what happens and
/// at which fleet op count (see
/// [`ChurnSchedule`](tiering_sim::ChurnSchedule) for the trigger
/// semantics).
#[derive(Debug, Clone)]
pub struct ChurnSpec {
    /// Fleet-wide completed-op threshold the event fires at.
    pub at_fleet_ops: u64,
    /// What happens.
    pub action: ChurnAction,
}

/// The two fleet-composition changes a [`ChurnSpec`] can schedule.
#[derive(Debug, Clone)]
pub enum ChurnAction {
    /// A new tenant joins (admitted under the min-one guarantee). Its
    /// workload seed is derived from the scenario seed and its position in
    /// the churn list, after the initial tenants' seeds.
    Arrive(TenantSpec),
    /// The named live tenant leaves; its fast pages are reclaimed.
    Depart(String),
}

impl ChurnSpec {
    /// Schedules `tenant` to arrive at the given fleet op count.
    pub fn arrive(at_fleet_ops: u64, tenant: TenantSpec) -> Self {
        Self {
            at_fleet_ops,
            action: ChurnAction::Arrive(tenant),
        }
    }

    /// Schedules the named tenant's departure at the given fleet op count.
    pub fn depart(at_fleet_ops: u64, name: impl Into<String>) -> Self {
        Self {
            at_fleet_ops,
            action: ChurnAction::Depart(name.into()),
        }
    }
}

/// A complete dynamic-fleet recipe: who starts on the machine, how the
/// composition churns, and which objective the controller apportions
/// under. The churn-free, proportional special case is exactly a
/// [`CoLocationSpec`] — this is its fleet-scale superset.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Tenants present from the start (at least one).
    pub tenants: Vec<TenantSpec>,
    /// Scheduled arrivals/departures (may be empty — a static fleet).
    pub churn: Vec<ChurnSpec>,
    /// The controller's quota objective.
    pub objective: ObjectiveKind,
    /// Shared fast-tier sizing. `BudgetSpec::Ratio` resolves against the
    /// combined footprint of **every** tenant the recipe names (initial
    /// and arrivals), so the budget never shrinks below the min-one
    /// guarantee however the composition churns.
    pub budget: BudgetSpec,
    /// Minimum budget share any live tenant keeps.
    pub floor_frac: f64,
    /// Simulated time between controller rebalances.
    pub rebalance_interval_ns: u64,
    /// How the controller recomputes quotas on each rebalance.
    /// `FullScan` (the default) keeps the historical event shape the
    /// goldens fingerprint; `Incremental` records compact events and does
    /// O(k log n) work per rebalance — the setting for large fleets.
    pub controller_mode: ControllerMode,
}

impl FleetSpec {
    /// A spec with the demo defaults: proportional objective, 1:8 budget,
    /// 10% floor, 10 ms cadence.
    pub fn new(tenants: Vec<TenantSpec>) -> Self {
        Self {
            tenants,
            churn: Vec::new(),
            objective: ObjectiveKind::Proportional,
            budget: CoLocationSpec::DEFAULT_BUDGET,
            floor_frac: tiering_sim::DEFAULT_FLOOR_FRAC,
            rebalance_interval_ns: tiering_sim::DEFAULT_REBALANCE_INTERVAL_NS,
            controller_mode: ControllerMode::FullScan,
        }
    }

    /// Sets the churn schedule.
    #[must_use]
    pub fn with_churn(mut self, churn: Vec<ChurnSpec>) -> Self {
        self.churn = churn;
        self
    }

    /// Overrides the quota objective.
    #[must_use]
    pub fn with_objective(mut self, objective: ObjectiveKind) -> Self {
        self.objective = objective;
        self
    }

    /// Overrides the budget sizing.
    #[must_use]
    pub fn with_budget(mut self, budget: BudgetSpec) -> Self {
        self.budget = budget;
        self
    }

    /// Overrides the tenant floor fraction.
    #[must_use]
    pub fn with_floor_frac(mut self, frac: f64) -> Self {
        self.floor_frac = frac;
        self
    }

    /// Overrides the rebalance cadence.
    #[must_use]
    pub fn with_rebalance_interval_ns(mut self, ns: u64) -> Self {
        self.rebalance_interval_ns = ns;
        self
    }

    /// Overrides the controller's apportioning mode.
    #[must_use]
    pub fn with_controller_mode(mut self, mode: ControllerMode) -> Self {
        self.controller_mode = mode;
        self
    }

    /// Every tenant the recipe can ever admit: the initial set plus churn
    /// arrivals (budget floors and seed derivation are sized by this).
    pub fn total_tenant_slots(&self) -> usize {
        self.tenants.len()
            + self
                .churn
                .iter()
                .filter(|c| matches!(c.action, ChurnAction::Arrive(_)))
                .count()
    }

    /// `a+b+c` label over the initial tenant names.
    pub fn tenants_label(&self) -> String {
        self.tenants
            .iter()
            .map(|t| t.name.as_str())
            .collect::<Vec<_>>()
            .join("+")
    }
}

/// What a scenario executes: one (workload, policy, tier) run, N
/// co-located tenants sharing a controller-partitioned fast tier, or a
/// dynamic fleet with churn and a pluggable quota objective.
#[derive(Debug, Clone)]
pub enum ScenarioKind {
    /// The classic single-application experiment.
    Single {
        /// Workload recipe.
        workload: WorkloadSpec,
        /// Policy recipe.
        policy: PolicySpec,
        /// Tier sizing.
        tier: TierSpec,
    },
    /// Multi-tenant co-location under the §7 global controller.
    CoLocation(CoLocationSpec),
    /// A dynamic fleet: tenant churn plus a pluggable quota objective.
    Fleet(FleetSpec),
}

/// One self-contained experiment: everything needed to reproduce one
/// result, cheap to clone and safe to run from any thread.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Display label (defaults to `workload/tier/policy`).
    pub label: String,
    /// What this scenario executes.
    pub kind: ScenarioKind,
    /// Engine configuration.
    pub config: SimConfig,
    /// Base seed (single: the workload seed; co-location: per-tenant seeds
    /// are derived from it by tenant index).
    pub seed: u64,
}

impl Scenario {
    /// A scenario over standard suite components, mirroring
    /// [`run_suite_experiment`](tiering_sim::run_suite_experiment): the
    /// `AllFast` policy gets the all-fast tier configuration, everything
    /// else the ratio split.
    pub fn suite(
        id: WorkloadId,
        kind: PolicyKind,
        ratio: TierRatio,
        config: &SimConfig,
        seed: u64,
    ) -> Self {
        let tier = if kind == PolicyKind::AllFast {
            TierSpec::AllFast
        } else {
            TierSpec::Ratio(ratio)
        };
        Self {
            label: format!("{}/{}/{}", id.label(), ratio, kind.label()),
            kind: ScenarioKind::Single {
                workload: WorkloadSpec::Suite(id),
                policy: PolicySpec::Kind(kind),
                tier,
            },
            config: config.clone(),
            seed,
        }
    }

    /// A scenario over standard suite components on an N-tier ladder
    /// preset: the workload footprint sizes the ladder via
    /// [`LadderKind::topology`] and the run executes on every rung
    /// (per-rung latencies, adjacent-hop migrations, demotion cascades).
    pub fn suite_ladder(
        id: WorkloadId,
        kind: PolicyKind,
        ladder: LadderKind,
        config: &SimConfig,
        seed: u64,
    ) -> Self {
        Self {
            label: format!("{}/{}/{}", id.label(), ladder.label(), kind.label()),
            kind: ScenarioKind::Single {
                workload: WorkloadSpec::Suite(id),
                policy: PolicySpec::Kind(kind),
                tier: TierSpec::Ladder(ladder),
            },
            config: config.clone(),
            seed,
        }
    }

    /// A fully custom single-application scenario.
    pub fn new(
        label: impl Into<String>,
        workload: WorkloadSpec,
        policy: PolicySpec,
        tier: TierSpec,
        config: &SimConfig,
        seed: u64,
    ) -> Self {
        Self {
            label: label.into(),
            kind: ScenarioKind::Single {
                workload,
                policy,
                tier,
            },
            config: config.clone(),
            seed,
        }
    }

    /// A co-location scenario: the tenants run concurrently (in simulated
    /// time) against one controller-partitioned fast tier.
    pub fn co_location(
        label: impl Into<String>,
        spec: CoLocationSpec,
        config: &SimConfig,
        seed: u64,
    ) -> Self {
        Self {
            label: label.into(),
            kind: ScenarioKind::CoLocation(spec),
            config: config.clone(),
            seed,
        }
    }

    /// The tenant pair behind [`wakeup_demo`](Scenario::wakeup_demo): a hot
    /// cache-style tenant and a mostly idle batch tenant that wakes up at
    /// 40 simulated ms. Exposed so sweeps (the bench co-location matrix)
    /// can build on the exact same recipe the demo pins.
    pub fn wakeup_demo_tenants() -> Vec<TenantSpec> {
        vec![
            TenantSpec::new(
                "cache",
                WorkloadSpec::custom("zipf-hot", |seed| {
                    Box::new(ZipfPageWorkload::new(8_000, 0.99, u64::MAX, seed))
                }),
                PolicySpec::Kind(PolicyKind::HybridTier),
            ),
            TenantSpec::new(
                "batch",
                WorkloadSpec::custom("zipf-wakeup", |seed| {
                    Box::new(
                        ZipfPageWorkload::new(16_000, 0.2, u64::MAX, seed)
                            .with_cpu_ns(2_000)
                            .with_wakeup(40_000_000, 1.1, 50),
                    )
                }),
                PolicySpec::Kind(PolicyKind::HybridTier),
            ),
        ]
    }

    /// The canonical §7 wake-up demonstration, shared verbatim by the
    /// `multi_tenant` example, the `sec7` bench experiment, and the golden
    /// suite (so all three see the same quota trajectory): the
    /// [`wakeup_demo_tenants`](Scenario::wakeup_demo_tenants) pair at a 1:8
    /// budget, rebalanced every 10 ms. Run it with a horizon of at least
    /// ~100 ms (`config.max_sim_ns`) to see the controller follow the
    /// demand swing.
    pub fn wakeup_demo(config: &SimConfig, seed: u64) -> Self {
        let spec = CoLocationSpec::new(Self::wakeup_demo_tenants())
            .with_budget(BudgetSpec::Ratio(TierRatio::OneTo8))
            .with_rebalance_interval_ns(10_000_000);
        Self::co_location("cache+batch/1:8/wakeup", spec, config, seed)
    }

    /// A dynamic-fleet scenario: tenants arrive and depart on the spec's
    /// churn schedule, under its quota objective.
    pub fn fleet(label: impl Into<String>, spec: FleetSpec, config: &SimConfig, seed: u64) -> Self {
        Self {
            label: label.into(),
            kind: ScenarioKind::Fleet(spec),
            config: config.clone(),
            seed,
        }
    }

    /// The tenants and churn schedule behind
    /// [`fleet_churn_demo`](Scenario::fleet_churn_demo): a hot cache-style
    /// tenant, a wide lukewarm analytics tenant, and a `burst` tenant that
    /// departs a third of the way in and arrives again (a fresh slot, same
    /// name) two thirds in — the canonical arrive/depart/arrive-again
    /// trajectory. Exposed so sweeps (the bench fleet matrix) build on the
    /// exact recipe the golden suite pins.
    pub fn fleet_churn_demo_tenants() -> (Vec<TenantSpec>, Vec<ChurnSpec>) {
        let burst = || {
            TenantSpec::new(
                "burst",
                WorkloadSpec::custom("zipf-burst", |seed| {
                    Box::new(ZipfPageWorkload::new(6_000, 0.9, u64::MAX, seed))
                }),
                PolicySpec::Kind(PolicyKind::HybridTier),
            )
        };
        let tenants = vec![
            TenantSpec::new(
                "cache",
                WorkloadSpec::custom("zipf-hot", |seed| {
                    Box::new(ZipfPageWorkload::new(8_000, 0.99, u64::MAX, seed))
                }),
                PolicySpec::Kind(PolicyKind::HybridTier),
            ),
            TenantSpec::new(
                "analytics",
                WorkloadSpec::custom("zipf-wide", |seed| {
                    Box::new(ZipfPageWorkload::new(16_000, 0.4, u64::MAX, seed).with_cpu_ns(1_500))
                }),
                PolicySpec::Kind(PolicyKind::HybridTier),
            ),
            burst(),
        ];
        let churn = vec![
            ChurnSpec::depart(60_000, "burst"),
            ChurnSpec::arrive(120_000, burst()),
        ];
        (tenants, churn)
    }

    /// The canonical 3-tenant churn demonstration under the given
    /// objective, shared verbatim by the `fleet_churn` example, the bench
    /// fleet matrix, and the golden suite (one snapshot per objective):
    /// the [`fleet_churn_demo_tenants`](Scenario::fleet_churn_demo_tenants)
    /// fleet at a 1:8 budget, rebalanced every 5 ms. Run it with a horizon
    /// of at least ~60 ms (`config.max_sim_ns`) so both churn events fire.
    pub fn fleet_churn_demo(objective: ObjectiveKind, config: &SimConfig, seed: u64) -> Self {
        let (tenants, churn) = Self::fleet_churn_demo_tenants();
        let spec = FleetSpec::new(tenants)
            .with_churn(churn)
            .with_objective(objective)
            .with_budget(BudgetSpec::Ratio(TierRatio::OneTo8))
            .with_rebalance_interval_ns(5_000_000);
        Self::fleet(
            format!("cache+analytics+burst/{}/churn", objective.label()),
            spec,
            config,
            seed,
        )
    }

    /// The fleet recipe behind the sweep's tenant-count axis
    /// ([`FleetMatrix::tenant_counts`](crate::FleetMatrix::tenant_counts)):
    /// `n` tenants where a small head of `hot` tenants does real paging
    /// work (Zipf over 256 pages, 20 k ops each) and the long tail of
    /// `tiny` tenants registers, touches a handful of pages, and finishes
    /// within the first round — the fleet shape that stresses the
    /// controller's admit/retire and sparse-rebalance paths rather than
    /// the memory pipeline. The controller runs in
    /// [`ControllerMode::Incremental`] on a tight 200 µs cadence with a
    /// 4-pages-per-tenant budget, and one hot tenant departs then a
    /// replacement arrives mid-run so the schedule exercises churn at
    /// scale.
    pub fn synthetic_fleet_spec(n: usize) -> FleetSpec {
        let hot_workload = || {
            WorkloadSpec::custom("zipf-hot-small", |seed| {
                Box::new(ZipfPageWorkload::new(256, 0.9, 20_000, seed))
            })
        };
        let hot = n.min(16);
        let mut tenants = Vec::with_capacity(n);
        for i in 0..hot {
            tenants.push(TenantSpec::new(
                format!("hot{i}"),
                hot_workload(),
                PolicySpec::Kind(PolicyKind::HybridTier),
            ));
        }
        // Tail tenants get a byte-budgeted HybridTier without the momentum
        // tracker: the default config's 16 Ki-key CBF floors cost ~100 KiB
        // per tenant — negligible at demo scale, ~10 GiB at 10⁵ tenants.
        let lean_policy = || {
            PolicySpec::custom("hybridtier-lean", |tier_cfg| {
                let config = HybridTierConfig::scaled(tier_cfg)
                    .without_momentum()
                    .with_cbf_budget(4096);
                Box::new(HybridTierPolicy::new(config, tier_cfg))
            })
        };
        for i in hot..n {
            tenants.push(TenantSpec::new(
                format!("tiny{i}"),
                WorkloadSpec::custom("zipf-tiny", |seed| {
                    Box::new(ZipfPageWorkload::new(64, 0.9, 40, seed))
                }),
                lean_policy(),
            ));
        }
        let churn = vec![
            ChurnSpec::depart(20_000, "hot0"),
            ChurnSpec::arrive(
                60_000,
                TenantSpec::new(
                    "hot0",
                    hot_workload(),
                    PolicySpec::Kind(PolicyKind::HybridTier),
                ),
            ),
        ];
        // floor_frac 0.25 on a 4-pages-per-tenant budget yields a one-page
        // floor, which keeps the incremental controller on its lazy
        // O(k log n) path (the min-one fixup is provably inert) instead of
        // legitimately falling back to the O(n) oracle every round.
        FleetSpec::new(tenants)
            .with_churn(churn)
            .with_budget(BudgetSpec::Pages(4 * n as u64))
            .with_floor_frac(0.25)
            .with_rebalance_interval_ns(200_000)
            .with_controller_mode(ControllerMode::Incremental)
    }

    /// Resolves the tier configuration for a workload of `pages` pages.
    fn tier_config(tier: &TierSpec, config: &SimConfig, pages: u64) -> TierConfig {
        match tier {
            TierSpec::Ratio(ratio) => TierConfig::for_footprint(pages, *ratio, config.page_size),
            TierSpec::AllFast => TierConfig::all_fast(pages, config.page_size),
            TierSpec::Explicit(cfg) => *cfg,
            // Binary facade over the ladder (fast = tier 0, slow = the
            // rest); the run paths below use the full topology instead.
            TierSpec::Ladder(kind) => kind.topology(pages, config.page_size).as_tier_config(),
        }
    }

    /// Builds the workload(s) and policy(ies) and runs the engine to
    /// completion in the calling thread. Deterministic: identical scenarios
    /// produce byte-identical reports regardless of which/how many threads
    /// run their siblings.
    pub fn run(&self) -> ScenarioResult {
        let start = Instant::now();
        match &self.kind {
            ScenarioKind::Single {
                workload,
                policy,
                tier,
            } => {
                let report =
                    run_single_captured(workload, policy, tier, &self.config, self.seed).report;
                ScenarioResult {
                    label: self.label.clone(),
                    workload: workload.label(),
                    policy: policy.label(),
                    tier: tier.label(),
                    seed: self.seed,
                    wall: start.elapsed(),
                    report,
                    multi: None,
                }
            }
            ScenarioKind::CoLocation(spec) => {
                let runs: Vec<TenantRun> = spec
                    .tenants
                    .iter()
                    .enumerate()
                    .map(|(i, t)| {
                        let wseed = derive_seed(self.seed, i as u64);
                        let policy = t.policy.clone();
                        TenantRun::new(t.name.clone(), t.workload.build(wseed), move |cfg| {
                            policy.build(cfg)
                        })
                    })
                    .collect();
                let combined: u64 = runs
                    .iter()
                    .map(|r| r.workload.footprint_pages(self.config.page_size))
                    .sum();
                let budget = spec.budget.resolve(combined, spec.tenants.len());
                let mt_cfg = MultiTenantConfig::new(budget)
                    .with_floor_frac(spec.floor_frac)
                    .with_rebalance_interval_ns(spec.rebalance_interval_ns);
                let multi = MultiTenantEngine::new(self.config.clone(), mt_cfg).run(runs);
                ScenarioResult {
                    label: self.label.clone(),
                    workload: spec.tenants_label(),
                    policy: spec
                        .tenants
                        .iter()
                        .map(|t| t.policy.label())
                        .collect::<Vec<_>>()
                        .join("+"),
                    tier: format!("co/{}", spec.budget.label()),
                    seed: self.seed,
                    wall: start.elapsed(),
                    report: multi.aggregate.clone(),
                    multi: Some(multi),
                }
            }
            ScenarioKind::Fleet(spec) => {
                let runs: Vec<TenantRun> = spec
                    .tenants
                    .iter()
                    .enumerate()
                    .map(|(i, t)| {
                        let wseed = derive_seed(self.seed, i as u64);
                        let policy = t.policy.clone();
                        TenantRun::new(t.name.clone(), t.workload.build(wseed), move |cfg| {
                            policy.build(cfg)
                        })
                    })
                    .collect();
                let mut schedule = ChurnSchedule::new();
                let mut combined: u64 = runs
                    .iter()
                    .map(|r| r.workload.footprint_pages(self.config.page_size))
                    .sum();
                for (j, c) in spec.churn.iter().enumerate() {
                    match &c.action {
                        ChurnAction::Arrive(t) => {
                            let wseed = derive_seed(self.seed, (spec.tenants.len() + j) as u64);
                            let workload = t.workload.build(wseed);
                            combined += workload.footprint_pages(self.config.page_size);
                            let policy = t.policy.clone();
                            schedule = schedule.arrive(
                                c.at_fleet_ops,
                                TenantRun::new(t.name.clone(), workload, move |cfg| {
                                    policy.build(cfg)
                                }),
                            );
                        }
                        ChurnAction::Depart(name) => {
                            schedule = schedule.depart(c.at_fleet_ops, name.clone());
                        }
                    }
                }
                let budget = spec.budget.resolve(combined, spec.total_tenant_slots());
                let mt_cfg = MultiTenantConfig::new(budget)
                    .with_floor_frac(spec.floor_frac)
                    .with_rebalance_interval_ns(spec.rebalance_interval_ns)
                    .with_objective(spec.objective)
                    .with_controller_mode(spec.controller_mode);
                let multi = MultiTenantEngine::new(self.config.clone(), mt_cfg)
                    .run_with_churn(runs, schedule);
                ScenarioResult {
                    label: self.label.clone(),
                    workload: spec.tenants_label(),
                    policy: spec
                        .tenants
                        .iter()
                        .map(|t| t.policy.label())
                        .collect::<Vec<_>>()
                        .join("+"),
                    tier: format!("fleet/{}/{}", spec.objective.label(), spec.budget.label()),
                    seed: self.seed,
                    wall: start.elapsed(),
                    report: multi.aggregate.clone(),
                    multi: Some(multi),
                }
            }
        }
    }

    /// Whether this scenario can be split into contiguous op-range chunks
    /// for intra-scenario parallelism: a `Single` recipe with a finite op
    /// cap, no simulated-time cap, and no whole-run observers (cache
    /// simulation, hotness probes) — those cannot be cut at an op boundary.
    /// [`run_chunked`](Scenario::run_chunked) falls back to an ordinary
    /// [`run`](Scenario::run) for everything else.
    pub fn chunkable(&self) -> bool {
        matches!(self.kind, ScenarioKind::Single { .. })
            && self.config.max_ops != u64::MAX
            && self.config.max_sim_ns == u64::MAX
            && self.config.cache.is_none()
            && !self.config.count_probe
            && self.config.retention_probe.is_none()
    }

    /// The deterministic chunk plan for splitting this scenario's
    /// `max_ops` budget `chunks` ways: near-equal contiguous op ranges
    /// (the remainder goes to the first chunks, one op each), never more
    /// chunks than ops. The plan depends only on `(max_ops, chunks)` —
    /// never on thread counts or the host — so a chunked run is as
    /// reproducible as a serial one.
    pub fn chunk_plan(&self, chunks: usize) -> Vec<u64> {
        let total = self.config.max_ops;
        let n = (chunks as u64).clamp(1, total.max(1));
        let (base, rem) = (total / n, total % n);
        (0..n).map(|c| base + u64::from(c < rem)).collect()
    }

    /// Runs the scenario split into `chunks` deterministic op-range chunks
    /// executed by up to `workers` threads, reducing the per-chunk results
    /// in chunk order ([`merge_captured`]).
    ///
    /// Each chunk is an independent engine run: its own workload instance
    /// (seeded by [`derive_seed`](crate::derive_seed) from the scenario
    /// seed and the chunk index), its own policy, its own tiered memory.
    /// The chunk plan is therefore **part of the recipe** — a chunked run
    /// is a different (equally deterministic) experiment than the
    /// unchunked run of the same scenario — but for a fixed `chunks` the
    /// result is byte-identical for *any* `workers`, on any host: worker
    /// threads only decide where a chunk executes, never what it is, and
    /// the reduction is position-ordered. `chunks <= 1` or a
    /// non-[`chunkable`](Scenario::chunkable) scenario falls back to an
    /// ordinary [`run`](Scenario::run), byte-identical to calling it
    /// directly.
    pub fn run_chunked(&self, chunks: usize, workers: usize) -> ScenarioResult {
        if chunks <= 1 || !self.chunkable() {
            return self.run();
        }
        let start = Instant::now();
        let ScenarioKind::Single {
            workload,
            policy,
            tier,
        } = &self.kind
        else {
            unreachable!("chunkable() admits Single scenarios only");
        };
        let plan = self.chunk_plan(chunks);
        let slots: Vec<Mutex<Option<CapturedRun>>> =
            plan.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = workers.clamp(1, plan.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= plan.len() {
                        break;
                    }
                    let mut config = self.config.clone();
                    config.max_ops = plan[c];
                    let seed = derive_seed(self.seed, c as u64);
                    let run = run_single_captured(workload, policy, tier, &config, seed);
                    *slots[c].lock().expect("chunk slot poisoned") = Some(run);
                });
            }
        });
        let runs: Vec<CapturedRun> = slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("chunk slot poisoned")
                    .expect("chunk slot never filled")
            })
            .collect();
        ScenarioResult {
            label: self.label.clone(),
            workload: workload.label(),
            policy: policy.label(),
            tier: tier.label(),
            seed: self.seed,
            wall: start.elapsed(),
            report: merge_captured(&runs),
            multi: None,
        }
    }
}

/// One single-application run, as a [`CapturedRun`] (the report plus the
/// raw aggregates the chunked reduction needs).
///
/// Suite workload + standard policy: resolve both identifiers to concrete
/// types once, so the whole run executes the monomorphized pipeline
/// (`Engine::run_typed_captured`). Custom specs only hand out boxed trait
/// objects, so they take the dyn instantiation of the same pipeline;
/// either way the report is byte-identical (see `typed_path_equals_dyn` in
/// the sim crate's integration tests).
fn run_single_captured(
    workload: &WorkloadSpec,
    policy: &PolicySpec,
    tier: &TierSpec,
    config: &SimConfig,
    seed: u64,
) -> CapturedRun {
    match (workload, policy) {
        (WorkloadSpec::Suite(id), PolicySpec::Kind(kind)) => visit_workload(
            *id,
            seed,
            TypedSingle {
                config,
                tier,
                kind: *kind,
            },
        ),
        _ => {
            let mut w = workload.build(seed);
            let pages = w.footprint_pages(config.page_size);
            if let TierSpec::Ladder(kind) = tier {
                let topology = kind.topology(pages, config.page_size);
                let mut p = policy.build(&topology.as_tier_config());
                Engine::new(config.clone()).run_typed_ladder_captured(
                    w.as_mut(),
                    p.as_mut(),
                    topology,
                )
            } else {
                let tier_cfg = Scenario::tier_config(tier, config, pages);
                let mut p = policy.build(&tier_cfg);
                Engine::new(config.clone()).run_captured(w.as_mut(), p.as_mut(), tier_cfg)
            }
        }
    }
}

/// Double-dispatch glue for the monomorphized single-scenario path: the
/// workload visitor resolves the generator type, sizes the tiers from its
/// footprint, then hands off to the policy visitor, which resolves the
/// policy type and runs [`Engine::run_typed_captured`]. Only these two
/// small shells are instantiated per (workload, policy) type pair — the
/// heavy pipeline stages are generic in at most one of the two, so the
/// instantiation count stays additive, not multiplicative.
struct TypedSingle<'a> {
    config: &'a SimConfig,
    tier: &'a TierSpec,
    kind: PolicyKind,
}

impl WorkloadVisitor for TypedSingle<'_> {
    type Out = CapturedRun;
    fn visit<W: Workload + 'static>(self, mut workload: W) -> CapturedRun {
        let pages = workload.footprint_pages(self.config.page_size);
        let topology = match self.tier {
            TierSpec::Ladder(kind) => Some(kind.topology(pages, self.config.page_size)),
            _ => None,
        };
        let tier_cfg = match &topology {
            Some(t) => t.as_tier_config(),
            None => Scenario::tier_config(self.tier, self.config, pages),
        };
        visit_policy(
            self.kind,
            &tier_cfg,
            TypedSingleWithWorkload {
                config: self.config,
                tier_cfg,
                topology,
                workload: &mut workload,
            },
        )
    }
}

struct TypedSingleWithWorkload<'a, W: Workload> {
    config: &'a SimConfig,
    tier_cfg: TierConfig,
    /// `Some` routes the run through the N-tier ladder pipeline.
    topology: Option<TierTopology>,
    workload: &'a mut W,
}

impl<W: Workload> PolicyVisitor for TypedSingleWithWorkload<'_, W> {
    type Out = CapturedRun;
    fn visit<P: TieringPolicy + 'static>(self, mut policy: P) -> CapturedRun {
        match self.topology {
            Some(topology) => Engine::new(self.config.clone()).run_typed_ladder_captured(
                self.workload,
                &mut policy,
                topology,
            ),
            None => Engine::new(self.config.clone()).run_typed_captured(
                self.workload,
                &mut policy,
                self.tier_cfg,
            ),
        }
    }
}

/// The outcome of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Scenario label.
    pub label: String,
    /// Workload label (tenant names joined with `+` for co-location).
    pub workload: String,
    /// Policy label (joined with `+` for co-location).
    pub policy: String,
    /// Tier-spec label (`co/<budget>` for co-location).
    pub tier: String,
    /// Seed the workload(s) were built with.
    pub seed: u64,
    /// Host wall-clock time of this run (excluded from `PartialEq`-based
    /// determinism checks via [`ScenarioResult::same_outcome`]).
    pub wall: Duration,
    /// The simulation report (co-location: the whole-machine aggregate).
    pub report: SimReport,
    /// Per-tenant detail and quota trajectory for co-location scenarios.
    pub multi: Option<MultiTenantReport>,
}

impl ScenarioResult {
    /// Whether two results describe the same simulation outcome (ignores
    /// host wall-clock, which legitimately varies between runs).
    pub fn same_outcome(&self, other: &Self) -> bool {
        self.label == other.label
            && self.workload == other.workload
            && self.policy == other.policy
            && self.tier == other.tier
            && self.seed == other.seed
            && self.report == other.report
            && self.multi == other.multi
    }

    /// A stable 64-bit digest of this result's deterministic outcome:
    /// labels, seed, the report fingerprint, and (for multi-tenant kinds)
    /// the [`MultiTenantReport::fingerprint`]. Host wall time is excluded.
    ///
    /// Identical scenarios produce identical fingerprints on any host, so
    /// distributed-sweep tooling can cross-check shard outputs (and the
    /// `"fingerprint"` field of `BENCH_*.json` entries) without comparing
    /// whole reports.
    pub fn fingerprint(&self) -> u64 {
        // Mix the identity strings and seed into the report digest with the
        // same splitmix-style finalizer used for seed derivation.
        let mut acc = self.report.fingerprint();
        for s in [&self.label, &self.workload, &self.policy, &self.tier] {
            for b in s.as_bytes() {
                acc = crate::derive_seed(acc, u64::from(*b));
            }
            acc = crate::derive_seed(acc, s.len() as u64);
        }
        acc = crate::derive_seed(acc, self.seed);
        if let Some(multi) = &self.multi {
            acc = crate::derive_seed(acc, multi.fingerprint());
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_scenario_runs_and_labels() {
        let s = Scenario::suite(
            WorkloadId::CdnCacheLib,
            PolicyKind::HybridTier,
            TierRatio::OneTo8,
            &SimConfig::default().with_max_ops(2_000),
            42,
        );
        assert_eq!(s.label, "CDN/1:8/HybridTier");
        let r = s.run();
        assert_eq!(r.report.ops, 2_000);
        assert_eq!(r.policy, "HybridTier");
        assert_eq!(r.tier, "1:8");
        assert!(r.multi.is_none());
    }

    #[test]
    fn allfast_policy_gets_allfast_tier() {
        let s = Scenario::suite(
            WorkloadId::CdnCacheLib,
            PolicyKind::AllFast,
            TierRatio::OneTo8,
            &SimConfig::default().with_max_ops(1_000),
            42,
        );
        assert!(matches!(
            s.kind,
            ScenarioKind::Single {
                tier: TierSpec::AllFast,
                ..
            }
        ));
        let r = s.run();
        assert!((r.report.fast_hit_frac - 1.0).abs() < 1e-9);
    }

    #[test]
    fn custom_specs_run() {
        let s = Scenario::new(
            "custom-zipf",
            WorkloadSpec::custom("zipf", |seed| {
                Box::new(ZipfPageWorkload::new(500, 0.99, 3_000, seed))
            }),
            PolicySpec::custom("ht-tuned", |cfg| {
                tiering_policies::build_policy(PolicyKind::HybridTier, cfg)
            }),
            TierSpec::Ratio(TierRatio::OneTo4),
            &SimConfig::default(),
            9,
        );
        let r = s.run();
        assert_eq!(r.workload, "zipf");
        assert_eq!(r.policy, "ht-tuned");
        assert!(r.report.ops > 0);
    }

    #[test]
    fn identical_scenarios_identical_outcomes() {
        let mk = || {
            Scenario::suite(
                WorkloadId::Silo,
                PolicyKind::Memtis,
                TierRatio::OneTo16,
                &SimConfig::default().with_max_ops(3_000),
                5,
            )
            .run()
        };
        assert!(mk().same_outcome(&mk()));
    }

    #[test]
    fn colocation_scenario_runs_with_derived_tenant_seeds() {
        let spec = CoLocationSpec::new(vec![
            TenantSpec::new(
                "a",
                WorkloadSpec::custom("zipf", |seed| {
                    Box::new(ZipfPageWorkload::new(1_000, 0.99, 8_000, seed))
                }),
                PolicySpec::Kind(PolicyKind::HybridTier),
            ),
            TenantSpec::new(
                "b",
                WorkloadSpec::custom("zipf", |seed| {
                    Box::new(ZipfPageWorkload::new(1_000, 0.99, 8_000, seed))
                }),
                PolicySpec::Kind(PolicyKind::HybridTier),
            ),
        ])
        .with_budget(BudgetSpec::Pages(250))
        .with_rebalance_interval_ns(500_000);
        let r = Scenario::co_location("a+b", spec, &SimConfig::default(), 77).run();
        let multi = r.multi.expect("co-location detail");
        assert_eq!(multi.tenants.len(), 2);
        assert_eq!(multi.fast_budget_pages, 250);
        assert_eq!(r.workload, "a+b");
        assert_eq!(r.tier, "co/250pg");
        assert_eq!(r.report.ops, 16_000, "aggregate sums both tenants");
        // Identical recipes, but derived seeds make the streams distinct.
        assert_ne!(
            multi.tenants[0].report.sim_ns, multi.tenants[1].report.sim_ns,
            "tenants must not share a workload RNG stream"
        );
        assert!(!multi.rebalances.is_empty());
    }

    #[test]
    fn fleet_churn_demo_runs_under_every_objective() {
        let config = SimConfig::default().with_max_sim_ns(60_000_000);
        for objective in tiering_policies::ObjectiveKind::ALL {
            let s = Scenario::fleet_churn_demo(objective, &config, 21);
            assert_eq!(
                s.label,
                format!("cache+analytics+burst/{}/churn", objective.label())
            );
            let r = s.run();
            assert_eq!(r.tier, format!("fleet/{}/1:8", objective.label()));
            let multi = r.multi.expect("fleet detail");
            assert_eq!(multi.tenants.len(), 4, "3 initial + 1 re-arrival slot");
            assert_eq!(multi.churn.len(), 2, "both churn events fired");
            assert!(
                multi
                    .rebalances
                    .iter()
                    .all(|e| e.objective == objective.label()
                        && e.assigned() == multi.fast_budget_pages),
                "{objective:?}: budget leak or mislabel"
            );
            // The burst tenant really leaves and a fresh slot really runs.
            assert!(multi.tenants[2].departed_at_ns.is_some());
            assert!(multi.tenants[3].report.ops > 0);
        }
    }

    #[test]
    fn fleet_arrivals_get_derived_seeds() {
        // Two arrivals with identical recipes must not share an RNG
        // stream (seeds derive from the churn position).
        let tenant = |name: &str| {
            TenantSpec::new(
                name,
                WorkloadSpec::custom("zipf", |seed| {
                    Box::new(ZipfPageWorkload::new(1_000, 0.9, 4_000, seed))
                }),
                PolicySpec::Kind(PolicyKind::HybridTier),
            )
        };
        let spec = FleetSpec::new(vec![tenant("base")])
            .with_churn(vec![
                ChurnSpec::arrive(1_000, tenant("x")),
                ChurnSpec::arrive(2_000, tenant("y")),
            ])
            .with_budget(BudgetSpec::Pages(300))
            .with_rebalance_interval_ns(500_000);
        assert_eq!(spec.total_tenant_slots(), 3);
        let r = Scenario::fleet("fleet", spec, &SimConfig::default(), 5).run();
        let multi = r.multi.expect("fleet detail");
        assert_eq!(multi.tenants.len(), 3);
        assert_ne!(
            multi.tenants[1].report.sim_ns, multi.tenants[2].report.sim_ns,
            "arrivals must not share a workload RNG stream"
        );
    }

    #[test]
    fn wakeup_demo_shifts_quota_to_the_woken_tenant() {
        let config = SimConfig::default().with_max_sim_ns(100_000_000);
        let r = Scenario::wakeup_demo(&config, 17).run();
        let multi = r.multi.expect("co-location detail");
        let cache_traj = multi.quota_trajectory(0);
        let batch_traj = multi.quota_trajectory(1);
        assert_eq!(cache_traj.len(), batch_traj.len());
        // Before the wake (first ~4 rebalances) the cache tenant dominates;
        // after it, the batch tenant's quota must rise substantially.
        let before = batch_traj
            .iter()
            .find(|(t, _)| *t == 30_000_000)
            .expect("rebalance at 30ms")
            .1;
        let after = batch_traj.last().expect("events").1;
        assert!(
            after > before * 2,
            "wake-up must grow the batch tenant's quota: {before} -> {after}"
        );
        assert!(
            cache_traj[1].1 > batch_traj[1].1,
            "cache tenant dominates while batch idles: {cache_traj:?}"
        );
    }
}
