//! Set-associative cache simulation for tiering-overhead attribution.
//!
//! The HybridTier paper (§2.3.3, §6.3.3, Figures 5/13/14) measures how many
//! L1 and LLC cache misses are caused by *tiering metadata updates* as
//! opposed to the application itself. On real hardware this is done with
//! `perf` attribution per thread; here we replay both the application's
//! memory references and the tiering policy's metadata references through a
//! simulated two-level cache hierarchy and attribute every hit/miss to its
//! [`Source`].
//!
//! The model is deliberately simple — physically indexed, true-LRU,
//! non-inclusive levels — because the figures under study compare *relative*
//! locality of metadata layouts (page-table walk vs. hash table vs. standard
//! CBF vs. blocked CBF), which a basic LRU hierarchy captures faithfully.
//!
//! # Example
//!
//! ```
//! use cache_sim::{CacheConfig, CacheHierarchy, Source};
//!
//! let mut h = CacheHierarchy::new(CacheConfig::l1d(), CacheConfig::llc());
//! h.access(0x1000, Source::App);
//! h.access(0x1000, Source::App); // second touch hits L1
//! let stats = h.stats();
//! assert_eq!(stats.l1.by(Source::App).misses, 1);
//! assert_eq!(stats.l1.by(Source::App).hits, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod hierarchy;

pub use cache::{CacheConfig, SetAssocCache};
pub use hierarchy::{CacheHierarchy, HierarchyStats, HitLevel, LevelStats, Source, SourceStats};

/// Cache line size in bytes used throughout the simulator.
pub const LINE_BYTES: u64 = 64;
