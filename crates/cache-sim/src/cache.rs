//! A single set-associative, true-LRU cache level.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: usize,
}

impl CacheConfig {
    /// A 48 KiB, 12-way L1 data cache (Ice Lake-SP, as in the paper's Xeon
    /// 4314 testbed).
    pub fn l1d() -> Self {
        Self {
            size_bytes: 48 << 10,
            ways: 12,
            line_bytes: 64,
        }
    }

    /// A 24 MiB, 12-way shared last-level cache (scaled to the 16-core
    /// Xeon 4314's 24 MiB LLC).
    pub fn llc() -> Self {
        Self {
            size_bytes: 24 << 20,
            ways: 12,
            line_bytes: 64,
        }
    }

    /// A small LLC for scaled-down simulations: keeps the ratio of metadata
    /// size to LLC size comparable to the paper despite ~512× smaller
    /// footprints.
    pub fn llc_scaled() -> Self {
        Self {
            size_bytes: 2 << 20,
            ways: 16,
            line_bytes: 64,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, capacity not
    /// divisible into whole sets, or a non-power-of-two line size).
    pub fn num_sets(&self) -> usize {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.ways > 0 && self.size_bytes > 0);
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            lines.is_multiple_of(self.ways),
            "capacity {} lines not divisible by {} ways",
            lines,
            self.ways
        );
        lines / self.ways
    }
}

/// One set-associative cache level with true-LRU replacement.
///
/// Tags are full line addresses, so aliasing across address spaces is
/// impossible. Lookup is a linear scan over the ways of one set — at 12 ways
/// this is a handful of nanoseconds and keeps the simulator fast enough to
/// replay tens of millions of references.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    sets: usize,
    set_mask: u64,
    line_shift: u32,
    /// `sets * ways` tags; `u64::MAX` marks an empty way.
    tags: Vec<u64>,
    /// Per-way last-touch stamps for LRU.
    stamps: Vec<u64>,
    clock: u64,
}

const EMPTY: u64 = u64::MAX;

impl SetAssocCache {
    /// Builds an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `config` is degenerate (see [`CacheConfig::num_sets`]) or if
    /// the set count is not a power of two.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.num_sets();
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        Self {
            config,
            sets,
            set_mask: sets as u64 - 1,
            line_shift: config.line_bytes.trailing_zeros(),
            tags: vec![EMPTY; sets * config.ways],
            stamps: vec![0; sets * config.ways],
            clock: 0,
        }
    }

    /// Geometry of this level.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Touches the line containing `byte_addr`; returns `true` on hit.
    ///
    /// On a miss the LRU way of the set is evicted and replaced.
    #[inline]
    pub fn access(&mut self, byte_addr: u64) -> bool {
        self.clock += 1;
        let line = byte_addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let base = set * self.config.ways;
        let ways = &mut self.tags[base..base + self.config.ways];

        let mut victim = 0usize;
        let mut victim_stamp = u64::MAX;
        for (i, &tag) in ways.iter().enumerate() {
            if tag == line {
                self.stamps[base + i] = self.clock;
                return true;
            }
            let s = self.stamps[base + i];
            if s < victim_stamp {
                victim_stamp = s;
                victim = i;
            }
        }
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Returns whether the line containing `byte_addr` is currently resident
    /// (without touching LRU state).
    pub fn contains(&self, byte_addr: u64) -> bool {
        let line = byte_addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let base = set * self.config.ways;
        self.tags[base..base + self.config.ways].contains(&line)
    }

    /// Empties the cache.
    pub fn flush(&mut self) {
        self.tags.fill(EMPTY);
        self.stamps.fill(0);
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != EMPTY).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets × 2 ways × 64B = 512B.
        SetAssocCache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn geometry() {
        assert_eq!(CacheConfig::l1d().num_sets(), 64);
        assert_eq!(CacheConfig::llc().num_sets(), 32768);
        assert_eq!(tiny().sets(), 4);
    }

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0x0));
        assert!(c.access(0x0));
        assert!(c.access(0x3F), "same line as 0x0");
        assert!(!c.access(0x40), "next line misses");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set index = (addr >> 6) & 3. Addresses mapping to set 0:
        let a = 0x000; // line 0
        let b = 0x100; // line 4
        let d = 0x200; // line 8
        assert!(!c.access(a));
        assert!(!c.access(b));
        assert!(c.access(a), "refresh a's recency");
        assert!(!c.access(d), "evicts b (LRU)");
        assert!(c.access(a), "a survived");
        assert!(!c.access(b), "b was evicted");
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny();
        // 16 distinct lines round-robin over a 8-line cache: all misses on
        // every pass.
        let mut misses = 0;
        for pass in 0..3 {
            for i in 0..16u64 {
                if !c.access(i * 64) {
                    misses += 1;
                }
            }
            let _ = pass;
        }
        assert_eq!(misses, 48);
    }

    #[test]
    fn working_set_fitting_in_cache_hits_after_warmup() {
        let mut c = tiny();
        for i in 0..8u64 {
            c.access(i * 64);
        }
        for i in 0..8u64 {
            assert!(c.access(i * 64), "line {i} should be resident");
        }
        assert_eq!(c.resident_lines(), 8);
    }

    #[test]
    fn contains_does_not_disturb_lru() {
        let mut c = tiny();
        c.access(0x000);
        c.access(0x100);
        assert!(c.contains(0x000));
        // `contains` must not refresh 0x000: after touching 0x100 then
        // inserting a third line in set 0, 0x000 is the LRU victim.
        c.access(0x100);
        c.access(0x200);
        assert!(!c.contains(0x000));
        assert!(c.contains(0x100));
    }

    #[test]
    fn flush_empties() {
        let mut c = tiny();
        c.access(0);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.access(0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_line_size() {
        let _ = SetAssocCache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 48,
        });
    }
}
