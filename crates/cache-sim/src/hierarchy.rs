//! Two-level hierarchy with per-source miss attribution.

use crate::cache::{CacheConfig, SetAssocCache};

/// Who issued a memory reference — the application, or the tiering runtime
/// updating its metadata. Mirrors the paper's per-thread `perf` attribution
/// (§6.3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Source {
    /// The workload's own loads/stores.
    App,
    /// Tiering-metadata loads/stores (tracker updates, histogram, scans).
    Tiering,
}

/// Hit/miss counts for one source at one level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl SourceStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when no accesses occurred.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// Per-level statistics split by source.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    app: SourceStats,
    tiering: SourceStats,
}

impl LevelStats {
    /// Stats for one source.
    pub fn by(&self, source: Source) -> SourceStats {
        match source {
            Source::App => self.app,
            Source::Tiering => self.tiering,
        }
    }

    /// Total misses across both sources.
    pub fn total_misses(&self) -> u64 {
        self.app.misses + self.tiering.misses
    }

    /// Fraction of this level's misses caused by tiering metadata — the
    /// quantity plotted in paper Figures 5 and 13.
    pub fn tiering_miss_fraction(&self) -> f64 {
        let total = self.total_misses();
        if total == 0 {
            0.0
        } else {
            self.tiering.misses as f64 / total as f64
        }
    }

    fn record(&mut self, source: Source, hit: bool) {
        let s = match source {
            Source::App => &mut self.app,
            Source::Tiering => &mut self.tiering,
        };
        if hit {
            s.hits += 1;
        } else {
            s.misses += 1;
        }
    }
}

/// Snapshot of both levels' statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 data cache statistics.
    pub l1: LevelStats,
    /// Last-level cache statistics.
    pub llc: LevelStats,
}

/// Result of one access through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Served by L1.
    L1,
    /// Missed L1, served by LLC.
    Llc,
    /// Missed both levels; served by memory.
    Memory,
}

/// An L1 + LLC hierarchy with per-source attribution.
///
/// Non-inclusive: each level tracks residency independently; an L1 hit does
/// not touch the LLC (matching the common "L1 filter" modelling convention).
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: SetAssocCache,
    llc: SetAssocCache,
    stats: HierarchyStats,
}

impl CacheHierarchy {
    /// Builds a hierarchy from two level geometries.
    pub fn new(l1: CacheConfig, llc: CacheConfig) -> Self {
        Self {
            l1: SetAssocCache::new(l1),
            llc: SetAssocCache::new(llc),
            stats: HierarchyStats::default(),
        }
    }

    /// Hierarchy matching the paper's testbed (48 KiB L1d, 24 MiB LLC).
    pub fn paper_testbed() -> Self {
        Self::new(CacheConfig::l1d(), CacheConfig::llc())
    }

    /// Hierarchy for scaled-down simulations (48 KiB L1d, 2 MiB LLC), keeping
    /// metadata:LLC proportions close to the paper's despite smaller
    /// footprints.
    pub fn scaled() -> Self {
        Self::new(CacheConfig::l1d(), CacheConfig::llc_scaled())
    }

    /// Touches `byte_addr` on behalf of `source`; returns where it hit.
    #[inline]
    pub fn access(&mut self, byte_addr: u64, source: Source) -> HitLevel {
        if self.l1.access(byte_addr) {
            self.stats.l1.record(source, true);
            return HitLevel::L1;
        }
        self.stats.l1.record(source, false);
        if self.llc.access(byte_addr) {
            self.stats.llc.record(source, true);
            HitLevel::Llc
        } else {
            self.stats.llc.record(source, false);
            HitLevel::Memory
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }

    /// Resets statistics but keeps cache contents (for excluding warmup).
    pub fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
    }

    /// Flushes both levels and resets statistics.
    pub fn reset(&mut self) {
        self.l1.flush();
        self.llc.flush();
        self.stats = HierarchyStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(
            CacheConfig {
                size_bytes: 512,
                ways: 2,
                line_bytes: 64,
            },
            CacheConfig {
                size_bytes: 4096,
                ways: 4,
                line_bytes: 64,
            },
        )
    }

    #[test]
    fn miss_then_l1_hit() {
        let mut h = tiny_hierarchy();
        assert_eq!(h.access(0, Source::App), HitLevel::Memory);
        assert_eq!(h.access(0, Source::App), HitLevel::L1);
        let s = h.stats();
        assert_eq!(s.l1.by(Source::App).hits, 1);
        assert_eq!(s.l1.by(Source::App).misses, 1);
        assert_eq!(s.llc.by(Source::App).misses, 1);
    }

    #[test]
    fn llc_catches_l1_evictions() {
        let mut h = tiny_hierarchy();
        // Fill far beyond L1 (8 lines) but within LLC (64 lines).
        for i in 0..32u64 {
            h.access(i * 64, Source::App);
        }
        // Second pass: L1 misses but LLC hits.
        let mut llc_hits = 0;
        for i in 0..32u64 {
            if h.access(i * 64, Source::App) == HitLevel::Llc {
                llc_hits += 1;
            }
        }
        assert!(
            llc_hits > 24,
            "most of pass 2 should hit LLC, got {llc_hits}"
        );
    }

    #[test]
    fn attribution_separates_sources() {
        let mut h = tiny_hierarchy();
        h.access(0x0000, Source::App);
        h.access(0x9000, Source::Tiering);
        h.access(0xA000, Source::Tiering);
        let s = h.stats();
        assert_eq!(s.l1.by(Source::App).misses, 1);
        assert_eq!(s.l1.by(Source::Tiering).misses, 2);
        let f = s.l1.tiering_miss_fraction();
        assert!((f - 2.0 / 3.0).abs() < 1e-12, "fraction {f}");
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut h = tiny_hierarchy();
        h.access(0, Source::App);
        h.reset_stats();
        assert_eq!(
            h.access(0, Source::App),
            HitLevel::L1,
            "line still resident"
        );
        assert_eq!(h.stats().l1.by(Source::App).misses, 0);
    }

    #[test]
    fn miss_ratio_edge_cases() {
        let s = SourceStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        let l = LevelStats::default();
        assert_eq!(l.tiering_miss_fraction(), 0.0);
    }
}
