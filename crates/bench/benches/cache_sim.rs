//! Cache-simulator throughput (it must sustain tens of millions of accesses
//! per second to keep the Figure 5/13/14 experiments cheap).

use cache_sim::{CacheConfig, CacheHierarchy, Source};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_access");
    group.bench_function("sequential_4k_lines", |b| {
        let mut h = CacheHierarchy::new(CacheConfig::l1d(), CacheConfig::llc_scaled());
        let mut addr = 0u64;
        b.iter(|| {
            addr = (addr + 64) % (4096 * 64);
            black_box(h.access(addr, Source::App));
        })
    });
    group.bench_function("random_1m_lines", |b| {
        let mut h = CacheHierarchy::new(CacheConfig::l1d(), CacheConfig::llc_scaled());
        let mut x = 0x9E3779B97F4A7C15u64;
        b.iter(|| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            black_box(h.access((x % 1_000_000) * 64, Source::Tiering));
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_hierarchy
}
criterion_main!(benches);
