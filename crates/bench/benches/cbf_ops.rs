//! Microbenchmarks backing the paper's "lightweight" claims at the
//! data-structure level: CBF update/query cost vs. an exact hash table,
//! blocked vs. standard layout, and cooling cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hybridtier_cbf::{
    AccessCounter, BlockedCbf, CbfParams, CounterWidth, GroundTruthCounter, StandardCbf,
};

fn keys(n: usize) -> Vec<u64> {
    // Zipf-ish skew via squaring.
    (0..n as u64).map(|i| (i * i) % 10_000).collect()
}

fn bench_increment(c: &mut Criterion) {
    let params = CbfParams::for_capacity(100_000, 4, 0.001, CounterWidth::W4);
    let stream = keys(4096);
    let mut group = c.benchmark_group("increment");
    group.bench_function("blocked_cbf", |b| {
        let mut f = BlockedCbf::new(params.clone());
        b.iter(|| {
            for &k in &stream {
                black_box(f.increment(k));
            }
        })
    });
    group.bench_function("standard_cbf", |b| {
        let mut f = StandardCbf::new(params.clone());
        b.iter(|| {
            for &k in &stream {
                black_box(f.increment(k));
            }
        })
    });
    group.bench_function("hash_table", |b| {
        let mut f = GroundTruthCounter::new(CounterWidth::W4);
        b.iter(|| {
            for &k in &stream {
                black_box(f.increment(k));
            }
        })
    });
    group.finish();
}

fn bench_estimate(c: &mut Criterion) {
    let params = CbfParams::for_capacity(100_000, 4, 0.001, CounterWidth::W4);
    let stream = keys(4096);
    let mut blocked = BlockedCbf::new(params.clone());
    let mut standard = StandardCbf::new(params);
    for &k in &stream {
        blocked.increment(k);
        standard.increment(k);
    }
    let mut group = c.benchmark_group("estimate");
    group.bench_function("blocked_cbf", |b| {
        b.iter(|| {
            for &k in &stream {
                black_box(blocked.estimate(k));
            }
        })
    });
    group.bench_function("standard_cbf", |b| {
        b.iter(|| {
            for &k in &stream {
                black_box(standard.estimate(k));
            }
        })
    });
    group.finish();
}

fn bench_cool(c: &mut Criterion) {
    let params = CbfParams::for_capacity(1_000_000, 4, 0.001, CounterWidth::W4);
    let mut f = BlockedCbf::new(params);
    for k in 0..100_000u64 {
        f.increment(k);
    }
    c.bench_function("cool_1m_element_cbf", |b| b.iter(|| f.cool()));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_increment, bench_estimate, bench_cool
}
criterion_main!(benches);
