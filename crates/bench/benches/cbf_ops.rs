//! Microbenchmarks backing the paper's "lightweight" claims at the
//! data-structure level: CBF update/query cost vs. an exact hash table,
//! blocked vs. standard layout, and cooling cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hybridtier_cbf::{
    AccessCounter, BlockedCbf, CbfParams, CounterWidth, GroundTruthCounter, StandardCbf,
};

fn keys(n: usize) -> Vec<u64> {
    // Zipf-ish skew via squaring.
    (0..n as u64).map(|i| (i * i) % 10_000).collect()
}

fn bench_increment(c: &mut Criterion) {
    let params = CbfParams::for_capacity(100_000, 4, 0.001, CounterWidth::W4);
    let stream = keys(4096);
    let mut group = c.benchmark_group("increment");
    group.bench_function("blocked_cbf", |b| {
        let mut f = BlockedCbf::new(params.clone());
        b.iter(|| {
            for &k in &stream {
                black_box(f.increment(k));
            }
        })
    });
    // The per-counter reference path the word-level ops replaced: same
    // probes, but one indexed get/set per counter instead of a single
    // block load/store. The delta is the word-level payoff.
    group.bench_function("blocked_cbf_scalar_ref", |b| {
        let mut f = BlockedCbf::new(params.clone());
        b.iter(|| {
            for &k in &stream {
                black_box(f.increment_per_counter(k));
            }
        })
    });
    group.bench_function("blocked_cbf_batched", |b| {
        let mut f = BlockedCbf::new(params.clone());
        let mut out = Vec::with_capacity(stream.len());
        b.iter(|| {
            out.clear();
            f.increment_batch(&stream, &mut out);
            black_box(&out);
        })
    });
    group.bench_function("standard_cbf", |b| {
        let mut f = StandardCbf::new(params.clone());
        b.iter(|| {
            for &k in &stream {
                black_box(f.increment(k));
            }
        })
    });
    group.bench_function("hash_table", |b| {
        let mut f = GroundTruthCounter::new(CounterWidth::W4);
        b.iter(|| {
            for &k in &stream {
                black_box(f.increment(k));
            }
        })
    });
    group.finish();
}

fn bench_estimate(c: &mut Criterion) {
    let params = CbfParams::for_capacity(100_000, 4, 0.001, CounterWidth::W4);
    let stream = keys(4096);
    let mut blocked = BlockedCbf::new(params.clone());
    let mut standard = StandardCbf::new(params);
    for &k in &stream {
        blocked.increment(k);
        standard.increment(k);
    }
    let mut group = c.benchmark_group("estimate");
    group.bench_function("blocked_cbf", |b| {
        b.iter(|| {
            for &k in &stream {
                black_box(blocked.estimate(k));
            }
        })
    });
    group.bench_function("blocked_cbf_scalar_ref", |b| {
        b.iter(|| {
            for &k in &stream {
                black_box(blocked.estimate_per_counter(k));
            }
        })
    });
    group.bench_function("blocked_cbf_batched", |b| {
        let mut out = Vec::with_capacity(stream.len());
        b.iter(|| {
            out.clear();
            blocked.estimate_batch(&stream, &mut out);
            black_box(&out);
        })
    });
    group.bench_function("standard_cbf", |b| {
        b.iter(|| {
            for &k in &stream {
                black_box(standard.estimate(k));
            }
        })
    });
    group.finish();
}

/// The fused GET+INCREMENT HybridTier's sample ingest uses (one block
/// visit) vs. the discrete estimate-then-increment pair it replaced.
fn bench_fused_increment(c: &mut Criterion) {
    let params = CbfParams::for_capacity(100_000, 4, 0.001, CounterWidth::W4);
    let stream = keys(4096);
    let mut group = c.benchmark_group("increment_with_prev");
    group.bench_function("fused", |b| {
        let mut f = BlockedCbf::new(params.clone());
        b.iter(|| {
            for &k in &stream {
                black_box(f.increment_with_prev(k));
            }
        })
    });
    group.bench_function("estimate_then_increment", |b| {
        let mut f = BlockedCbf::new(params.clone());
        b.iter(|| {
            for &k in &stream {
                black_box((f.estimate(k), f.increment(k)));
            }
        })
    });
    group.finish();
}

/// The scalar word-level kernels against the wide kernels (portable
/// u64 SWAR by default, AVX2 where the `simd` build detects it), called
/// through their always-public names so one binary measures both sides of
/// the feature-gated dispatch. The `cbf_properties` suite pins the two
/// paths bit-identical; this group prices the difference.
fn bench_simd_dispatch(c: &mut Criterion) {
    let params = CbfParams::for_capacity(100_000, 4, 0.001, CounterWidth::W4);
    let stream = keys(4096);
    let mut group = c.benchmark_group("simd_dispatch");
    group.bench_function("increment_with_prev_scalar", |b| {
        let mut f = BlockedCbf::new(params.clone());
        b.iter(|| {
            for &k in &stream {
                black_box(f.increment_with_prev_scalar(k));
            }
        })
    });
    group.bench_function("increment_with_prev_simd", |b| {
        let mut f = BlockedCbf::new(params.clone());
        b.iter(|| {
            for &k in &stream {
                black_box(f.increment_with_prev_simd(k));
            }
        })
    });
    let mut warm = BlockedCbf::new(params);
    for &k in &stream {
        warm.increment(k);
    }
    group.bench_function("estimate_scalar", |b| {
        b.iter(|| {
            for &k in &stream {
                black_box(warm.estimate_scalar(k));
            }
        })
    });
    group.bench_function("estimate_simd", |b| {
        b.iter(|| {
            for &k in &stream {
                black_box(warm.estimate_simd(k));
            }
        })
    });
    group.finish();
}

fn bench_cool(c: &mut Criterion) {
    let params = CbfParams::for_capacity(1_000_000, 4, 0.001, CounterWidth::W4);
    let mut f = BlockedCbf::new(params);
    for k in 0..100_000u64 {
        f.increment(k);
    }
    c.bench_function("cool_1m_element_cbf", |b| b.iter(|| f.cool()));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_increment, bench_estimate, bench_fused_increment, bench_simd_dispatch, bench_cool
}
criterion_main!(benches);
