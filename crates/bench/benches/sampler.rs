//! Sampler and workload-generation throughput: the simulation's inner loop
//! must be dominated by the system under test, not trace generation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tiering_trace::{Access, Sampler, Workload};
use tiering_workloads::{CacheLibConfig, CacheLibWorkload, ZipfPageWorkload};

fn bench_sampler(c: &mut Criterion) {
    c.bench_function("sampler_observe", |b| {
        let mut s = Sampler::new(19);
        let a = Access::read(0x1234);
        b.iter(|| black_box(s.observe(&a)))
    });
}

fn bench_workload_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_next_op");
    group.bench_function("zipf_page", |b| {
        let mut w = ZipfPageWorkload::new(100_000, 0.99, u64::MAX, 1);
        let mut buf = Vec::with_capacity(8);
        b.iter(|| {
            buf.clear();
            black_box(w.next_op(0, &mut buf));
        })
    });
    group.bench_function("cachelib_cdn", |b| {
        let mut w = CacheLibWorkload::new(CacheLibConfig::cdn());
        let mut buf = Vec::with_capacity(64);
        b.iter(|| {
            buf.clear();
            black_box(w.next_op(0, &mut buf));
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sampler, bench_workload_gen
}
criterion_main!(benches);
