//! End-to-end pipeline throughput: host ops/sec through `Engine::run` on a
//! fixed Zipf recipe.
//!
//! This is the number the hot-path data-layout work (SoA access batches,
//! word-level CBF ops, hoisted access-stage invariants, flat policy
//! metadata) moves. Reported per (policy, batch size) so both the batching
//! win and the per-policy ingest cost are visible. Results are
//! deterministic — the same recipe the `batch_equivalence` tests pin — so
//! only wall time varies between hosts.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tiering_mem::{PageSize, TierConfig, TierRatio};
use tiering_policies::{build_policy, PolicyKind};
use tiering_sim::{Engine, SimConfig};
use tiering_trace::Workload;
use tiering_workloads::ZipfPageWorkload;

/// Ops per simulated run: long enough for steady-state placement, short
/// enough for a quick bench cycle.
const OPS: u64 = 100_000;

fn run_once(kind: PolicyKind, batch_ops: usize) {
    let mut w = ZipfPageWorkload::new(8_000, 0.99, OPS, 42);
    let pages = w.footprint_pages(PageSize::Base4K);
    let tier_cfg = TierConfig::for_footprint(pages, TierRatio::OneTo8, PageSize::Base4K);
    let mut policy = build_policy(kind, &tier_cfg);
    let config = SimConfig::default()
        .with_max_ops(OPS)
        .with_batch_ops(batch_ops);
    black_box(Engine::new(config).run(&mut w, policy.as_mut(), tier_cfg));
}

fn bench_pipeline_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_throughput");
    for kind in [
        PolicyKind::HybridTier,
        PolicyKind::Memtis,
        PolicyKind::FirstTouch,
    ] {
        group.bench_function(format!("{:?}_100k_ops_batch64", kind), |b| {
            b.iter(|| run_once(kind, 64))
        });
    }
    // Batch-size sensitivity on the paper's own policy: scalar pulls vs the
    // default batched pipeline.
    for batch in [1usize, 16, 256] {
        group.bench_function(format!("HybridTier_100k_ops_batch{batch}"), |b| {
            b.iter(|| run_once(PolicyKind::HybridTier, batch))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_pipeline_throughput
}
criterion_main!(benches);
