//! End-to-end pipeline throughput: host ops/sec through `Engine::run` on a
//! fixed Zipf recipe.
//!
//! This is the number the hot-path data-layout work (SoA access batches,
//! word-level CBF ops, hoisted access-stage invariants, flat policy
//! metadata) moves. Reported per (policy, batch size) so both the batching
//! win and the per-policy ingest cost are visible. Results are
//! deterministic — the same recipe the `batch_equivalence` tests pin — so
//! only wall time varies between hosts.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tiering_mem::{PageSize, TierConfig, TierRatio};
use tiering_policies::{build_policy, visit_policy, PolicyKind, PolicyVisitor, TieringPolicy};
use tiering_sim::{Engine, SimConfig};
use tiering_trace::Workload;
use tiering_workloads::ZipfPageWorkload;

/// Ops per simulated run: long enough for steady-state placement, short
/// enough for a quick bench cycle.
const OPS: u64 = 100_000;

fn run_once(kind: PolicyKind, batch_ops: usize) {
    let mut w = ZipfPageWorkload::new(8_000, 0.99, OPS, 42);
    let pages = w.footprint_pages(PageSize::Base4K);
    let tier_cfg = TierConfig::for_footprint(pages, TierRatio::OneTo8, PageSize::Base4K);
    let mut policy = build_policy(kind, &tier_cfg);
    let config = SimConfig::default()
        .with_max_ops(OPS)
        .with_batch_ops(batch_ops);
    black_box(Engine::new(config).run(&mut w, policy.as_mut(), tier_cfg));
}

fn recipe() -> (ZipfPageWorkload, TierConfig, SimConfig) {
    let w = ZipfPageWorkload::new(8_000, 0.99, OPS, 42);
    let pages = w.footprint_pages(PageSize::Base4K);
    let tier_cfg = TierConfig::for_footprint(pages, TierRatio::OneTo8, PageSize::Base4K);
    let config = SimConfig::default().with_max_ops(OPS).with_batch_ops(64);
    (w, tier_cfg, config)
}

/// [`visit_policy`] shell: runs the recipe with the engine monomorphized
/// over the concrete workload and policy types — the dispatch-once path
/// the runner's single-tenant sweeps take.
struct TypedRun {
    workload: ZipfPageWorkload,
    tier_cfg: TierConfig,
    config: SimConfig,
}

impl PolicyVisitor for TypedRun {
    type Out = ();
    fn visit<P: TieringPolicy + 'static>(mut self, mut policy: P) {
        black_box(Engine::new(self.config).run_typed(
            &mut self.workload,
            &mut policy,
            self.tier_cfg,
        ));
    }
}

/// Dispatch-once monomorphization vs per-call virtual dispatch: the same
/// recipe through `Engine::run_typed` (concrete workload + policy resolved
/// via `visit_policy`) and through `Engine::run` (`dyn Workload` +
/// `dyn TieringPolicy`). Both produce identical reports — pinned by the
/// `batch_equivalence` matrix — so the gap is pure dispatch cost.
fn bench_typed_vs_dyn(c: &mut Criterion) {
    let mut group = c.benchmark_group("typed_vs_dyn");
    for kind in [PolicyKind::HybridTier, PolicyKind::Memtis] {
        group.bench_function(format!("{kind:?}_typed"), |b| {
            b.iter(|| {
                let (workload, tier_cfg, config) = recipe();
                visit_policy(
                    kind,
                    &tier_cfg,
                    TypedRun {
                        workload,
                        tier_cfg,
                        config,
                    },
                );
            })
        });
        group.bench_function(format!("{kind:?}_dyn"), |b| {
            b.iter(|| {
                let (mut workload, tier_cfg, config) = recipe();
                let mut policy = build_policy(kind, &tier_cfg);
                black_box(Engine::new(config).run(&mut workload, policy.as_mut(), tier_cfg));
            })
        });
    }
    group.finish();
}

fn bench_pipeline_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_throughput");
    for kind in [
        PolicyKind::HybridTier,
        PolicyKind::Memtis,
        PolicyKind::FirstTouch,
    ] {
        group.bench_function(format!("{:?}_100k_ops_batch64", kind), |b| {
            b.iter(|| run_once(kind, 64))
        });
    }
    // Batch-size sensitivity on the paper's own policy: scalar pulls vs the
    // default batched pipeline.
    for batch in [1usize, 16, 256] {
        group.bench_function(format!("HybridTier_100k_ops_batch{batch}"), |b| {
            b.iter(|| run_once(PolicyKind::HybridTier, batch))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_pipeline_throughput, bench_typed_vs_dyn
}
criterion_main!(benches);
