//! Control-plane rebalance cost vs fleet size: the incremental planner's
//! O(k log n) dirty-slot rebalance against the full-scan oracle's O(n),
//! plus the donor-funded churn path, at 10³ and 10⁴ tenants. The 10⁵
//! point lives in the `bench` binary's `"controller"` section (criterion's
//! per-iteration setup would dominate at that size).

use criterion::{criterion_group, criterion_main, Criterion};
use tiering_policies::{ControllerMode, GlobalController, ObjectiveKind};

/// SplitMix64 — deterministic demand stream.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A settled fleet in the lazy-path regime (one-page floor, bounded
/// demand palette) — the same recipe the `"controller"` BENCH section
/// measures.
fn settled(n: usize, mode: ControllerMode) -> GlobalController {
    let mut c = GlobalController::new(16 * n as u64, 0.1)
        .with_objective_kind(ObjectiveKind::Proportional)
        .with_mode(mode);
    let mut state = 0xC0FF_EE00 ^ n as u64;
    for i in 0..n {
        c.add_tenant(&format!("t{i}"), 256);
        let d = 1 + mix(&mut state) % 256;
        c.update_demand(i, d);
    }
    c.rebalance_dirty(0);
    c
}

fn bench_rebalance(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller_scaling");
    for n in [1_000usize, 10_000] {
        for (label, mode) in [
            ("full", ControllerMode::FullScan),
            ("incremental", ControllerMode::Incremental),
        ] {
            group.bench_function(format!("rebalance/{label}/n{n}"), |b| {
                let mut ctl = settled(n, mode);
                let mut state = 0xDEAD_BEEF ^ n as u64;
                let mut at = 1u64;
                b.iter(|| {
                    for _ in 0..16 {
                        let slot = (mix(&mut state) as usize) % n;
                        ctl.update_demand(slot, 1 + mix(&mut state) % 256);
                    }
                    at += 1;
                    ctl.rebalance_dirty(at)
                })
            });
        }
        group.bench_function(format!("churn/incremental/n{n}"), |b| {
            let mut ctl = settled(n, ControllerMode::Incremental);
            let mut state = 0x51EE_700D ^ n as u64;
            let mut e = 0u64;
            b.iter(|| {
                let mut slot = (mix(&mut state) as usize) % n;
                while !ctl.is_live(slot) {
                    slot = (slot + 1) % ctl.num_tenants();
                }
                ctl.retire_tenant(slot);
                e += 1;
                ctl.admit_tenant(&format!("churn{e}"), 256)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_rebalance
}
criterion_main!(benches);
