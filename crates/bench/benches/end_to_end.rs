//! End-to-end simulation throughput per policy: one compact scenario, all
//! six systems — the wall-clock cost of a tiering decision loop.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tiering_mem::{PageSize, TierConfig, TierRatio};
use tiering_policies::{build_policy, PolicyKind};
use tiering_sim::{Engine, SimConfig};
use tiering_trace::Workload;
use tiering_workloads::ZipfPageWorkload;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_50k_ops");
    group.sample_size(10);
    for kind in PolicyKind::COMPARED {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut w = ZipfPageWorkload::new(5_000, 0.99, 50_000, 3);
                    let pages = w.footprint_pages(PageSize::Base4K);
                    let tier_cfg =
                        TierConfig::for_footprint(pages, TierRatio::OneTo8, PageSize::Base4K);
                    let mut policy = build_policy(kind, &tier_cfg);
                    let cfg = SimConfig::default().with_max_ops(50_000);
                    black_box(Engine::new(cfg).run(&mut w, policy.as_mut(), tier_cfg))
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_end_to_end
}
criterion_main!(benches);
