//! Per-sample processing cost of each tiering policy (the tiering thread's
//! Algorithm-1 loop body).

use criterion::{criterion_group, criterion_main, Criterion};
use tiering_mem::{PageId, PageSize, Tier, TierConfig, TierRatio, TieredMemory};
use tiering_policies::{build_policy, PolicyCtx, PolicyKind};
use tiering_trace::Sample;

fn bench_on_sample(c: &mut Criterion) {
    let tier_cfg = TierConfig::for_footprint(100_000, TierRatio::OneTo8, PageSize::Base4K);
    let mut group = c.benchmark_group("on_sample");
    for kind in [
        PolicyKind::HybridTier,
        PolicyKind::HybridTierUnblocked,
        PolicyKind::Memtis,
        PolicyKind::Arc,
        PolicyKind::TwoQ,
    ] {
        group.bench_function(kind.label(), |b| {
            let mut policy = build_policy(kind, &tier_cfg);
            let mut mem = TieredMemory::new(tier_cfg);
            for i in 0..10_000u64 {
                mem.ensure_mapped(PageId(i), Tier::Slow);
            }
            let mut ctx = PolicyCtx::new();
            let mut i = 0u64;
            b.iter(|| {
                i = (i * 7 + 1) % 10_000;
                policy.on_sample(
                    Sample {
                        page: PageId(i),
                        addr: i << 12,
                        tier: mem.tier_of(PageId(i)).unwrap_or(Tier::Slow),
                        at_ns: i,
                        is_write: false,
                    },
                    &mut mem,
                    &mut ctx,
                );
                ctx.drain();
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_on_sample
}
criterion_main!(benches);
