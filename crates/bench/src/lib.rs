//! Benchmark harness regenerating every table and figure of the HybridTier
//! (ASPLOS'25) evaluation, plus the workspace's perf-trajectory and
//! distributed-sweep tooling.
//!
//! Each `experiments::figN` / `experiments::tableN` module regenerates one
//! paper result: it runs the relevant simulations, prints the same
//! rows/series the paper reports, and writes a CSV under `results/`.
//! The `repro` binary dispatches to them:
//!
//! ```text
//! cargo run -p hybridtier-bench --release --bin repro -- fig4
//! cargo run -p hybridtier-bench --release --bin repro -- all
//! ```
//!
//! Absolute numbers differ from the paper (simulator vs. testbed, ~512×
//! scaled footprints, ~1000× compressed timescale); the *shapes* — which
//! system wins, by roughly what factor, where crossovers fall — are the
//! reproduction targets. EXPERIMENTS.md records paper-vs-measured for every
//! entry.
//!
//! The `bench` binary times the standard sweeps serial-vs-parallel and
//! emits `BENCH_*.json` (schema: `docs/BENCH_FORMAT.md`), supported by
//! four library modules: [`json`] (dependency-free parser/writer),
//! [`compare`] (perf-regression gate between two BENCH files), [`merge`]
//! (the `--shard`/`--merge` distributed-sweep workflow), and [`fleet`]
//! (the `"fleet_exec"` section a `bench --exec-workers N` run seals its
//! executor event log into).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compare;
pub mod controller;
pub mod experiments;
pub mod fleet;
pub mod json;
pub mod merge;
mod output;

pub use output::{print_header, CsvWriter};

use tiering_sim::SimConfig;

/// Operation budget for the steady-state comparison sweeps (Figures 9–12,
/// 15): long enough for placement to converge and several churn cycles to
/// pass, short enough that the 180-run Figure 10 sweep stays in minutes.
pub const SWEEP_OPS: u64 = 1_200_000;

/// Default seed for all experiments (results are deterministic given this).
pub const SEED: u64 = 0xA5F0_5EED;

/// Engine configuration for the steady-state sweeps.
pub fn sweep_config() -> SimConfig {
    SimConfig::default().with_max_ops(SWEEP_OPS)
}

/// Engine configuration for adaptation-timeline experiments (Figure 4,
/// Table 3): finer windows, longer simulated horizon.
pub fn adaptation_config() -> SimConfig {
    SimConfig {
        window_ns: 100_000_000,    // 100 ms windows
        max_sim_ns: 8_000_000_000, // 8 simulated seconds
        ..SimConfig::default()
    }
}

/// Engine configuration for the §7 co-location experiments: a 100 ms
/// horizon covering the 40 ms tenant wake-up plus several rebalance
/// periods on each side.
pub fn colocation_config() -> SimConfig {
    SimConfig::default().with_max_sim_ns(100_000_000)
}

/// The co-location sweep the `bench` binary times serial-vs-parallel: the
/// §7 wake-up pairing plus a suite pairing, across two budget sizings
/// (4 multi-tenant scenarios, 2 tenants each).
pub fn colocation_matrix(max_sim_ns: u64) -> Vec<tiering_runner::Scenario> {
    use tiering_mem::TierRatio;
    use tiering_policies::PolicyKind;
    use tiering_runner::{BudgetSpec, CoLocationMatrix, Scenario, TenantSpec};
    use tiering_workloads::WorkloadId;

    CoLocationMatrix::new(SimConfig::default().with_max_sim_ns(max_sim_ns), SEED)
        .pairing("cache+wakeup", Scenario::wakeup_demo_tenants())
        .pairing(
            "cdn+silo",
            vec![
                TenantSpec::suite("cdn", WorkloadId::CdnCacheLib, PolicyKind::HybridTier),
                TenantSpec::suite("silo", WorkloadId::Silo, PolicyKind::HybridTier),
            ],
        )
        .budgets([
            BudgetSpec::Ratio(TierRatio::OneTo8),
            BudgetSpec::Ratio(TierRatio::OneTo4),
        ])
        .build()
}

/// The dynamic-fleet sweep the `bench` binary times serial-vs-parallel:
/// the canonical 3-tenant arrive/depart/arrive-again churn fleet
/// (`Scenario::fleet_churn_demo_tenants`) under every built-in quota
/// objective, across two budget sizings (6 fleet scenarios, up to 4
/// tenant slots each).
pub fn fleet_matrix(max_sim_ns: u64) -> Vec<tiering_runner::Scenario> {
    use tiering_mem::TierRatio;
    use tiering_runner::{BudgetSpec, FleetMatrix, Scenario};

    let (tenants, churn) = Scenario::fleet_churn_demo_tenants();
    FleetMatrix::new(SimConfig::default().with_max_sim_ns(max_sim_ns), SEED)
        .fleet("cache+analytics+burst", tenants, churn)
        .budgets([
            BudgetSpec::Ratio(TierRatio::OneTo8),
            BudgetSpec::Ratio(TierRatio::OneTo4),
        ])
        .rebalance_every_ns(5_000_000)
        .build()
}

/// The policy-comparison sweep: both CacheLib workloads × all three tier
/// ratios × the six compared systems (36 scenarios) — the matrix the `bench`
/// binary times serial-vs-parallel and the examples run interactively.
pub fn policy_comparison_matrix(ops: u64) -> Vec<tiering_runner::Scenario> {
    use tiering_mem::TierRatio;
    use tiering_policies::PolicyKind;
    use tiering_workloads::WorkloadId;

    tiering_runner::ScenarioMatrix::new(SimConfig::default().with_max_ops(ops), SEED)
        .workloads([WorkloadId::CdnCacheLib, WorkloadId::SocialCacheLib])
        .ratios(TierRatio::ALL)
        .policies(PolicyKind::COMPARED)
        .fixed_seed()
        .build()
}

/// Records the two CacheLib suite workloads (built with [`SEED`], exactly
/// as the `"single"` sweep builds them) to on-disk trace files under `dir`
/// for the `"trace"` bench section. Filenames are ops-independent
/// (`trace-CDN.trace`, `trace-social.trace`) and deterministically
/// overwritten, so scenario labels — the compare gate's join keys — stay
/// stable across `--ops` protocols.
pub fn record_trace_inputs(
    ops: u64,
    dir: &std::path::Path,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    use tiering_workloads::{build_workload, record_workload, WorkloadId};

    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::new();
    for (id, stem) in [
        (WorkloadId::CdnCacheLib, "trace-CDN"),
        (WorkloadId::SocialCacheLib, "trace-social"),
    ] {
        let path = dir.join(format!("{stem}.trace"));
        let mut workload = build_workload(id, SEED);
        record_workload(workload.as_mut(), ops, &path, 4096)
            .map_err(|e| std::io::Error::other(format!("recording {stem}: {e}")))?;
        paths.push(path);
    }
    Ok(paths)
}

/// The trace-replay sweep (`"trace"` section): every recorded trace file ×
/// the six compared systems at 1:8 (12 scenarios for the two CacheLib
/// traces). Replay is bit-identical to the generators (the runner's
/// replay-equivalence suite locks it), so this sweep times the *streaming
/// ingestion* path — chunked reads, checksum verification, and the
/// zero-copy batch fill — against the in-memory generators timed by
/// `"single"`.
pub fn trace_replay_matrix(
    ops: u64,
    traces: &[std::path::PathBuf],
) -> Vec<tiering_runner::Scenario> {
    use tiering_mem::TierRatio;
    use tiering_policies::PolicyKind;
    use tiering_runner::{PolicySpec, Scenario, TierSpec, WorkloadSpec};

    let config = SimConfig::default().with_max_ops(ops);
    let mut scenarios = Vec::new();
    for path in traces {
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "trace".to_string());
        for kind in PolicyKind::COMPARED {
            scenarios.push(Scenario::new(
                format!("{stem}/1:8/{}", kind.label()),
                WorkloadSpec::Trace(path.clone()),
                PolicySpec::Kind(kind),
                TierSpec::Ratio(TierRatio::OneTo8),
                &config,
                SEED,
            ));
        }
    }
    scenarios
}

/// The N-tier ladder sweep (`"tiers"` section): both CacheLib workloads on
/// every [`LadderKind`] preset (3-tier DRAM→CXL→NVMe, 4-tier archive) × the
/// six compared systems plus the NeoMem device-counter design — the extra
/// comparison axis the two-tier matrices cannot express. 28 scenarios.
///
/// [`LadderKind`]: tiering_mem::LadderKind
pub fn tier_ladder_matrix(ops: u64) -> Vec<tiering_runner::Scenario> {
    use tiering_mem::LadderKind;
    use tiering_policies::PolicyKind;
    use tiering_workloads::WorkloadId;

    tiering_runner::ScenarioMatrix::new(SimConfig::default().with_max_ops(ops), SEED)
        .workloads([WorkloadId::CdnCacheLib, WorkloadId::SocialCacheLib])
        .ratios([])
        .ladders(LadderKind::ALL)
        .policies(PolicyKind::COMPARED.into_iter().chain([PolicyKind::NeoMem]))
        .fixed_seed()
        .build()
}
