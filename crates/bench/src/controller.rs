//! Control-plane scaling probe: the `"controller"` BENCH section.
//!
//! Times the global controller directly — no memory pipeline — so the
//! numbers isolate apportioning cost: ns/rebalance when only `k ≪ n`
//! demands changed (incremental vs the full-scan oracle, per objective
//! averaged), ns/churn-event (retire + admit under the donor path), and
//! the deterministic `apportion_ops` meter that the sub-linearity
//! acceptance gate reads (wall-clock on shared CI boxes is too noisy to
//! gate growth *rates* on; the ops meter is exact).
//!
//! The section also records one end-to-end run of the synthetic
//! 10⁵-tenant fleet scenario (`Scenario::synthetic_fleet_spec`), proving
//! the whole stack — engine active-set iteration, compact events,
//! truncated rendering — completes a rebalance-heavy sweep at that scale.

use std::time::Instant;

use crate::json::Json;
use tiering_policies::{ControllerMode, GlobalController, ObjectiveKind};
use tiering_runner::{Scenario, SweepRunner};
use tiering_sim::SimConfig;

/// Demand changes applied per measured rebalance round (`k` in the
/// O(k log n) cost model).
pub const DIRTY_PER_ROUND: usize = 16;

/// Measured rebalance rounds per (tenant count, mode, objective) cell.
pub const ROUNDS: usize = 32;

/// Churn events (retire + re-admit pairs) timed per cell.
pub const CHURN_EVENTS: usize = 32;

/// One tenant-count row of the scaling table.
#[derive(Debug, Clone)]
pub struct ControllerPoint {
    /// Fleet size `n`.
    pub tenants: usize,
    /// Mean ns per rebalance with `DIRTY_PER_ROUND` dirty slots,
    /// full-scan mode (averaged over objectives and rounds).
    pub full_ns_per_rebalance: f64,
    /// Same measurement in incremental mode.
    pub incremental_ns_per_rebalance: f64,
    /// Mean `apportion_ops` consumed per incremental rebalance — the
    /// deterministic work meter (tree node visits + any fallback scans).
    pub incremental_ops_per_rebalance: f64,
    /// Mean ns per churn event (one retire + one admit) in incremental
    /// mode, quotas folded through the donor path.
    pub churn_ns_per_event: f64,
}

fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds an `n`-tenant controller, seeds every demand, and settles it
/// with one full rebalance so measurement starts from steady state.
///
/// The regime is chosen so the incremental planner's lazy path can
/// legitimately engage: `floor_frac` 0.1 on a 16-pages-per-tenant budget
/// yields a one-page floor (making the min-one fixup provably inert),
/// and the 256-value demand palette stays far below the planner's
/// distinct-class cap. Outside this regime the controller correctly
/// falls back to the O(n) oracle — which is what the `full` column
/// measures anyway.
fn settled(n: usize, kind: ObjectiveKind, mode: ControllerMode) -> GlobalController {
    let mut c = GlobalController::new(16 * n as u64, 0.1)
        .with_objective_kind(kind)
        .with_mode(mode);
    let mut state = 0xC0FF_EE00 ^ n as u64;
    for i in 0..n {
        c.add_tenant(&format!("t{i}"), 256);
        let d = 1 + mix(&mut state) % 256;
        c.update_demand(i, d);
    }
    c.rebalance_dirty(0);
    c
}

/// Mean ns/rebalance over `ROUNDS` rounds of `DIRTY_PER_ROUND` random
/// demand deltas, plus the mean `apportion_ops` per round.
fn time_rebalances(c: &mut GlobalController, n: usize) -> (f64, f64) {
    let mut state = 0xDEAD_BEEF ^ n as u64;
    let ops_before = c.apportion_ops();
    let start = Instant::now();
    for round in 0..ROUNDS {
        for _ in 0..DIRTY_PER_ROUND {
            let slot = (mix(&mut state) as usize) % n;
            if c.is_live(slot) {
                c.update_demand(slot, 1 + mix(&mut state) % 256);
            }
        }
        c.rebalance_dirty(1 + round as u64);
    }
    let ns = start.elapsed().as_nanos() as f64 / ROUNDS as f64;
    let ops = (c.apportion_ops() - ops_before) as f64 / ROUNDS as f64;
    (ns, ops)
}

/// Mean ns per churn event: retire a live tenant, then admit a fresh one
/// (the donor-funded O(log n) path), `CHURN_EVENTS` of each.
fn time_churn(c: &mut GlobalController, n: usize) -> f64 {
    let mut state = 0x51EE_700D ^ n as u64;
    let start = Instant::now();
    for e in 0..CHURN_EVENTS {
        let mut slot = (mix(&mut state) as usize) % n;
        while !c.is_live(slot) {
            slot = (slot + 1) % c.num_tenants();
        }
        c.retire_tenant(slot);
        c.admit_tenant(&format!("churn{e}"), 256);
    }
    start.elapsed().as_nanos() as f64 / (2 * CHURN_EVENTS) as f64
}

/// Measures one tenant count across all objectives, both modes.
pub fn measure_point(n: usize) -> ControllerPoint {
    let mut full_ns = 0.0;
    let mut inc_ns = 0.0;
    let mut inc_ops = 0.0;
    let mut churn_ns = 0.0;
    let kinds = ObjectiveKind::ALL;
    for &kind in &kinds {
        let mut full = settled(n, kind, ControllerMode::FullScan);
        let (ns, _) = time_rebalances(&mut full, n);
        full_ns += ns;

        let mut inc = settled(n, kind, ControllerMode::Incremental);
        let (ns, ops) = time_rebalances(&mut inc, n);
        inc_ns += ns;
        inc_ops += ops;
        churn_ns += time_churn(&mut inc, n);
    }
    let k = kinds.len() as f64;
    ControllerPoint {
        tenants: n,
        full_ns_per_rebalance: full_ns / k,
        incremental_ns_per_rebalance: inc_ns / k,
        incremental_ops_per_rebalance: inc_ops / k,
        churn_ns_per_event: churn_ns / k,
    }
}

/// Runs the synthetic large-fleet scenario end to end (serial, one
/// scenario) and reports its vitals. `max_ops` caps each lane (the bench
/// driver passes its `--ops` budget; the recipe's hot tenants stop at
/// 20 k ops regardless).
pub fn fleet_smoke(tenants: usize, max_ops: u64, seed: u64) -> Json {
    let mut config = SimConfig::default()
        .with_max_ops(max_ops)
        .with_batch_ops(32);
    // The per-lane metadata-cache model costs ~74 KiB of tag/stamp arrays
    // per tenant (32 KiB L1 + 256 KiB LLC at 16 B/line) — ~7 GiB at 10⁵
    // tenants, which turns this smoke into a reclaim benchmark. The smoke
    // measures control-plane scaling, not metadata locality; drop it.
    config.metadata_cache = false;
    let scenario = Scenario::fleet(
        format!("synth{tenants}/controller-smoke/fleet"),
        Scenario::synthetic_fleet_spec(tenants),
        &config,
        seed,
    );
    let start = Instant::now();
    let sweep = SweepRunner::serial().run(vec![scenario]);
    let wall = start.elapsed().as_secs_f64();
    let result = &sweep.results[0];
    let mut out = Json::obj();
    out.set("tenants", Json::Int(tenants as i128));
    out.set("wall_s", Json::Num(wall));
    out.set("ops", Json::Int(i128::from(result.report.ops)));
    if let Some(multi) = &result.multi {
        out.set("rebalances", Json::Int(multi.rebalances.len() as i128));
        out.set("churn_events", Json::Int(multi.churn.len() as i128));
        out.set(
            "fast_budget_pages",
            Json::Int(i128::from(multi.fast_budget_pages)),
        );
    }
    out
}

/// The whole `"controller"` section: the scaling table over
/// `tenant_counts` plus the `fleet_smoke` run at the largest count.
pub fn controller_section(tenant_counts: &[usize], max_ops: u64, seed: u64) -> Json {
    let mut section = Json::obj();
    section.set("dirty_per_round", Json::Int(DIRTY_PER_ROUND as i128));
    section.set("rounds", Json::Int(ROUNDS as i128));
    let mut points = Vec::new();
    for &n in tenant_counts {
        let p = measure_point(n);
        println!(
            "controller n={:>7}: full {:>12.0} ns/rebalance, incremental {:>9.0} ns \
             ({:>7.0} ops), churn {:>7.0} ns/event",
            p.tenants,
            p.full_ns_per_rebalance,
            p.incremental_ns_per_rebalance,
            p.incremental_ops_per_rebalance,
            p.churn_ns_per_event,
        );
        let mut row = Json::obj();
        row.set("tenants", Json::Int(p.tenants as i128));
        row.set("full_ns_per_rebalance", Json::Num(p.full_ns_per_rebalance));
        row.set(
            "incremental_ns_per_rebalance",
            Json::Num(p.incremental_ns_per_rebalance),
        );
        row.set(
            "incremental_ops_per_rebalance",
            Json::Num(p.incremental_ops_per_rebalance),
        );
        row.set("churn_ns_per_event", Json::Num(p.churn_ns_per_event));
        points.push(row);
    }
    section.set("points", Json::Arr(points));
    if let Some(&largest) = tenant_counts.iter().max() {
        let smoke = fleet_smoke(largest, max_ops, seed);
        println!(
            "controller fleet smoke: {largest} tenants in {:.2}s",
            smoke.num("wall_s").unwrap_or(0.0)
        );
        section.set("fleet_smoke", smoke);
    }
    section
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_point_is_sane_and_ops_metered() {
        let p = measure_point(512);
        assert_eq!(p.tenants, 512);
        assert!(p.full_ns_per_rebalance > 0.0);
        assert!(p.incremental_ns_per_rebalance > 0.0);
        // The deterministic meter must show work actually happening (the
        // growth-rate assertions live in the policies property suite).
        assert!(p.incremental_ops_per_rebalance > 0.0);
    }

    #[test]
    fn section_shape_matches_the_documented_schema() {
        let section = controller_section(&[64], 2_000, 7);
        assert_eq!(section.num("dirty_per_round"), Some(DIRTY_PER_ROUND as f64));
        let points = section.get("points").and_then(Json::as_array).unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].num("tenants"), Some(64.0));
        assert!(points[0].num("incremental_ns_per_rebalance").is_some());
        let smoke = section.get("fleet_smoke").unwrap();
        assert_eq!(smoke.num("tenants"), Some(64.0));
        assert!(smoke.num("ops").unwrap() > 0.0);
        assert!(smoke.num("rebalances").unwrap() > 0.0);
    }
}
