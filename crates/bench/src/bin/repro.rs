//! Regenerates the HybridTier paper's tables and figures.
//!
//! ```text
//! repro <experiment-id>...   run specific experiments (fig4, table3, ...)
//! repro all                  run everything
//! repro list                 list experiment ids
//! ```
//!
//! CSVs land in `results/`; the printed tables mirror the paper's rows.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use hybridtier_bench::experiments;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        usage();
        return ExitCode::SUCCESS;
    }
    if args[0] == "list" {
        for (id, _, desc) in experiments::ALL {
            println!("{id:<8} {desc}");
        }
        return ExitCode::SUCCESS;
    }

    let out =
        PathBuf::from(std::env::var("REPRO_OUT_DIR").unwrap_or_else(|_| "results".to_string()));
    let ids: Vec<&str> = if args[0] == "all" {
        experiments::ALL.iter().map(|&(id, ..)| id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };

    for id in &ids {
        let Some(runner) = experiments::find(id) else {
            eprintln!("unknown experiment '{id}'; try `repro list`");
            return ExitCode::FAILURE;
        };
        let start = Instant::now();
        if let Err(e) = runner(&out) {
            eprintln!("experiment {id} failed: {e}");
            return ExitCode::FAILURE;
        }
        println!("[{id} took {:.1}s]", start.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}

fn usage() {
    println!("usage: repro <experiment-id>... | all | list");
    println!("experiments:");
    for (id, _, desc) in experiments::ALL {
        println!("  {id:<8} {desc}");
    }
}
