//! Sweep-driver benchmark: times the policy-comparison sweep serial vs
//! parallel and emits machine-readable `BENCH_*.json` so future PRs can
//! track the perf trajectory.
//!
//! ```text
//! cargo run -p hybridtier-bench --release --bin bench -- [flags]
//!
//!   --json <path>     write BENCH json here (default results/BENCH_sweep.json)
//!   --ops <n>         ops per scenario        (default 300000)
//!   --sim-ms <n>      simulated ms per co-location scenario (default 100)
//!   --threads <n>     parallel worker threads (default: all cores)
//!   --serial-only     skip the parallel pass
//!   --parallel-only   skip the serial pass (no speedup reported)
//!   --no-colocation   skip the co-location sweep
//!   --no-fleet        skip the fleet churn sweep
//!   --compare <path>  load a previous BENCH json, print wall/throughput
//!                     deltas, and exit non-zero on regression
//!   --regress <frac>  max tolerated aggregate-throughput regression for
//!                     --compare (default 0.15)
//! ```
//!
//! The JSON records wall-clock seconds for each mode, the speedup, the
//! thread count, whether parallel results were byte-identical to serial,
//! and the full per-scenario result/timing breakdown of the last pass run —
//! for the single-tenant policy-comparison sweep, the multi-tenant
//! co-location sweep (`"colocation"` section, with per-tenant detail), and
//! the dynamic-fleet churn sweep (`"fleet"` section: objectives × budgets
//! over the canonical 3-tenant arrive/depart/arrive-again fleet).
//!
//! With `--compare`, a `"compare"` section (aggregate throughput ratio plus
//! per-scenario ratios, matched by label) is appended to the written JSON —
//! the machine-readable perf trajectory every perf PR is measured by.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use hybridtier_bench::compare::{SweepDelta, SweepSnapshot};
use hybridtier_bench::{colocation_matrix, fleet_matrix, json, policy_comparison_matrix};
use tiering_runner::{Scenario, SweepReport, SweepRunner};

struct Args {
    json: PathBuf,
    ops: u64,
    sim_ms: u64,
    threads: usize,
    serial: bool,
    parallel: bool,
    colocation: bool,
    fleet: bool,
    compare: Option<PathBuf>,
    regress: f64,
}

/// `Ok(None)` means `--help` was requested (exit success, no run).
fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        json: PathBuf::from("results/BENCH_sweep.json"),
        ops: 300_000,
        sim_ms: 100,
        threads: 0,
        serial: true,
        parallel: true,
        colocation: true,
        fleet: true,
        compare: None,
        regress: 0.15,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => {
                args.json = PathBuf::from(it.next().ok_or("--json needs a path")?);
            }
            "--ops" => {
                args.ops = it
                    .next()
                    .ok_or("--ops needs a number")?
                    .parse()
                    .map_err(|e| format!("--ops: {e}"))?;
            }
            "--sim-ms" => {
                args.sim_ms = it
                    .next()
                    .ok_or("--sim-ms needs a number")?
                    .parse()
                    .map_err(|e| format!("--sim-ms: {e}"))?;
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .ok_or("--threads needs a number")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--serial-only" => args.parallel = false,
            "--parallel-only" => args.serial = false,
            "--no-colocation" => args.colocation = false,
            "--no-fleet" => args.fleet = false,
            "--compare" => {
                args.compare = Some(PathBuf::from(it.next().ok_or("--compare needs a path")?));
            }
            "--regress" => {
                args.regress = it
                    .next()
                    .ok_or("--regress needs a fraction")?
                    .parse()
                    .map_err(|e| format!("--regress: {e}"))?;
                if !(0.0..1.0).contains(&args.regress) {
                    return Err("--regress must be in [0, 1)".to_string());
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench [--json <path>] [--ops <n>] [--sim-ms <n>] [--threads <n>] \
                     [--serial-only] [--parallel-only] [--no-colocation] [--no-fleet] \
                     [--compare <prev.json>] [--regress <frac>]"
                );
                return Ok(None);
            }
            other => return Err(format!("unknown flag '{other}'; try --help")),
        }
    }
    if !args.serial && !args.parallel {
        return Err("--serial-only and --parallel-only are mutually exclusive".to_string());
    }
    Ok(Some(args))
}

/// Times one scenario list serial and/or parallel; returns the passes,
/// whether they agreed, and the speedup.
fn run_sweep(
    name: &str,
    args: &Args,
    build: impl Fn() -> Vec<Scenario>,
) -> (
    Option<SweepReport>,
    Option<SweepReport>,
    Option<bool>,
    Option<f64>,
) {
    println!("{name}: {} scenarios", build().len());
    let mut serial: Option<SweepReport> = None;
    if args.serial {
        let sweep = SweepRunner::serial().run(build());
        println!("serial:   {:>8.2}s on 1 thread", sweep.wall.as_secs_f64());
        serial = Some(sweep);
    }
    let mut parallel: Option<SweepReport> = None;
    if args.parallel {
        let sweep = SweepRunner::new(args.threads).run(build());
        println!(
            "parallel: {:>8.2}s on {} threads",
            sweep.wall.as_secs_f64(),
            sweep.threads
        );
        parallel = Some(sweep);
    }
    let identical = match (&serial, &parallel) {
        (Some(s), Some(p)) => {
            let same = s.same_outcomes(p);
            if same {
                println!("parallel results identical to serial: yes");
            } else {
                eprintln!("ERROR: {name} parallel results diverged from serial");
            }
            Some(same)
        }
        _ => None,
    };
    let speedup = match (&serial, &parallel) {
        (Some(s), Some(p)) => {
            let x = s.wall.as_secs_f64() / p.wall.as_secs_f64().max(1e-9);
            println!("speedup:  {x:>8.2}x");
            Some(x)
        }
        _ => None,
    };
    (serial, parallel, identical, speedup)
}

/// Serializes one sweep's timing block (shared by both sweeps' JSON).
fn sweep_json(
    serial: &Option<SweepReport>,
    parallel: &Option<SweepReport>,
    identical: Option<bool>,
    speedup: Option<f64>,
) -> String {
    let detail = parallel.as_ref().or(serial.as_ref()).expect("one pass ran");
    let mut json = String::new();
    json.push_str(&format!("{{\"scenarios\":{}", detail.results.len()));
    if let Some(s) = serial {
        json.push_str(&format!(",\"serial_s\":{:.6}", s.wall.as_secs_f64()));
    }
    if let Some(p) = parallel {
        json.push_str(&format!(
            ",\"parallel_s\":{:.6},\"threads\":{}",
            p.wall.as_secs_f64(),
            p.threads
        ));
    }
    if let Some(x) = speedup {
        json.push_str(&format!(",\"speedup\":{x:.4}"));
    }
    if let Some(same) = identical {
        json.push_str(&format!(",\"parallel_identical_to_serial\":{same}"));
    }
    json.push_str(",\"sweep\":");
    json.push_str(&detail.to_json());
    json.push('}');
    json
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let (serial, parallel, identical, speedup) = run_sweep(
        &format!("policy-comparison sweep ({} ops/scenario)", args.ops),
        &args,
        || policy_comparison_matrix(args.ops),
    );

    let mut colo = None;
    if args.colocation {
        println!();
        let sim_ns = args.sim_ms * 1_000_000;
        colo = Some(run_sweep(
            &format!("co-location sweep ({} simulated ms/scenario)", args.sim_ms),
            &args,
            || colocation_matrix(sim_ns),
        ));
    }

    let mut fleet = None;
    if args.fleet {
        println!();
        let sim_ns = args.sim_ms * 1_000_000;
        fleet = Some(run_sweep(
            &format!(
                "fleet churn sweep ({} simulated ms/scenario, objectives x budgets)",
                args.sim_ms
            ),
            &args,
            || fleet_matrix(sim_ns),
        ));
    }

    // Assemble the BENCH json around the richer of each sweep's reports.
    // Timing fields live under "single"/"colocation"/"fleet" per sweep
    // (the PR-1 format had them at top level; CHANGES.md records the
    // move).
    let mut json = String::from("{\"bench\":\"policy_comparison_sweep\"");
    json.push_str(&format!(",\"ops_per_scenario\":{}", args.ops));
    let head = sweep_json(&serial, &parallel, identical, speedup);
    json.push_str(&format!(",\"single\":{head}"));
    if let Some((s, p, id, x)) = &colo {
        json.push_str(&format!(",\"colocation\":{}", sweep_json(s, p, *id, *x)));
    }
    if let Some((s, p, id, x)) = &fleet {
        json.push_str(&format!(",\"fleet\":{}", sweep_json(s, p, *id, *x)));
    }
    json.push('}');

    let colo_identical = colo.as_ref().and_then(|(_, _, id, _)| *id);
    let fleet_identical = fleet.as_ref().and_then(|(_, _, id, _)| *id);

    // Perf-trajectory comparison against a previous BENCH json: print
    // deltas, embed them machine-readably, and flag regressions.
    let mut regressed = false;
    if let Some(prev_path) = &args.compare {
        let prev_text = match std::fs::read_to_string(prev_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", prev_path.display());
                return ExitCode::FAILURE;
            }
        };
        let prev = match json::parse(&prev_text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("cannot parse {}: {e}", prev_path.display());
                return ExitCode::FAILURE;
            }
        };
        let cur = json::parse(&json).expect("bench emits valid json");
        let mut deltas = Vec::new();
        for name in ["single", "colocation", "fleet"] {
            if let (Some(p), Some(c)) = (prev.get(name), cur.get(name)) {
                deltas.push(SweepDelta::between(
                    name,
                    &SweepSnapshot::from_json(p),
                    &SweepSnapshot::from_json(c),
                ));
            }
        }
        println!(
            "\ncompare vs {} (regression threshold {:.0}%):",
            prev_path.display(),
            args.regress * 100.0
        );
        for d in &deltas {
            print!("{}", d.render());
        }
        json.pop(); // reopen the top-level object
        json.push_str(",\"compare\":[");
        for (i, d) in deltas.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&d.to_json());
        }
        json.push_str("]}");
        regressed = deltas.iter().any(|d| d.regressed(args.regress));
        if regressed {
            eprintln!(
                "REGRESSION: serial throughput fell more than {:.0}% below {}",
                args.regress * 100.0,
                prev_path.display()
            );
        }
    }

    if let Some(dir) = args.json.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    match std::fs::File::create(&args.json).and_then(|mut f| writeln!(f, "{json}")) {
        Ok(()) => println!("wrote {}", args.json.display()),
        Err(e) => {
            eprintln!("cannot write {}: {e}", args.json.display());
            return ExitCode::FAILURE;
        }
    }

    if identical == Some(false)
        || colo_identical == Some(false)
        || fleet_identical == Some(false)
        || regressed
    {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
