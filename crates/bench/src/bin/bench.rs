//! Sweep-driver benchmark: times the policy-comparison sweep serial vs
//! parallel and emits machine-readable `BENCH_*.json` so future PRs can
//! track the perf trajectory. Schema: `docs/BENCH_FORMAT.md`.
//!
//! ```text
//! cargo run -p hybridtier-bench --release --bin bench -- [flags]
//!
//!   --json <path>     write BENCH json here (default results/BENCH_sweep.json)
//!   --ops <n>         ops per scenario        (default 300000)
//!   --sim-ms <n>      simulated ms per co-location scenario (default 100)
//!   --threads <n>     parallel worker threads (default: all cores)
//!   --serial-only     skip the parallel pass
//!   --parallel-only   skip the serial pass (no speedup reported)
//!   --no-colocation   skip the co-location sweep
//!   --no-fleet        skip the fleet churn sweep
//!   --no-trace        skip the trace-replay sweep (recorded CacheLib
//!                     traces streamed back through the batch pipeline)
//!   --no-controller   skip the controller scaling probe (ns/rebalance and
//!                     ns/churn-event at 10^3/10^4/10^5 tenants plus the
//!                     large-fleet smoke run; also skipped under --shard,
//!                     since it is a host-local micro-benchmark)
//!   --shard <i/N>     run only round-robin shard i of N (0-based) of every
//!                     sweep; the json gains shard identity for --merge
//!   --exec-workers <n>
//!                     run the parallel pass through the fleet executor
//!                     (n in-process workers, 2n shards, retry/reassignment
//!                     on failure); the json gains a "fleet_exec" section
//!                     with the executor's event log
//!   --merge <a.json> <b.json> ...
//!                     merge shard jsons (any order) into --json instead of
//!                     running; rejects overlapping/missing/foreign shards
//!   --compare <path>  load a previous BENCH json, print wall/throughput
//!                     deltas, and exit non-zero on regression
//!   --regress <frac>  max tolerated aggregate-throughput regression for
//!                     --compare (default 0.15)
//! ```
//!
//! The JSON records wall-clock seconds for each mode, the speedup, the
//! thread count, whether parallel results were byte-identical to serial,
//! and the full per-scenario result/timing breakdown of the last pass run —
//! for the single-tenant policy-comparison sweep, the N-tier ladder sweep
//! (`"tiers"` section: 3- and 4-tier presets across the compared systems
//! plus NeoMem), the multi-tenant co-location sweep (`"colocation"`
//! section, with per-tenant detail), the dynamic-fleet churn sweep
//! (`"fleet"` section: objectives × budgets over the canonical 3-tenant
//! arrive/depart/arrive-again fleet), and the trace-replay sweep
//! (`"trace"` section: both CacheLib workloads recorded to on-disk traces
//! and streamed back through the chunked zero-copy replay path across the
//! compared systems).
//!
//! With `--compare`, a `"compare"` section (aggregate throughput ratio plus
//! per-scenario ratios, matched by label) is appended to the written JSON —
//! the machine-readable perf trajectory every perf PR is measured by. Its
//! first entry records section-presence drift: sweeps that exist on only
//! one side cannot be gated and are called out instead of silently skipped.
//!
//! The distributed workflow (`--shard` on every host, `--merge` anywhere)
//! reassembles a result identical to the unsharded run in every
//! deterministic field — see `docs/BENCH_FORMAT.md` and the
//! `tiering_runner` README's sharding guide.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use fleet_exec::{sweep_coordinator, FleetConfig, FleetExecReport};
use hybridtier_bench::compare::{ControllerDelta, SectionDrift, SweepDelta, SweepSnapshot};
use hybridtier_bench::controller::controller_section;
use hybridtier_bench::fleet::fleet_exec_json;
use hybridtier_bench::{
    colocation_matrix, fleet_matrix, json, merge, policy_comparison_matrix, tier_ladder_matrix,
};
use tiering_runner::{Scenario, ShardSpec, SweepReport, SweepRunner};

struct Args {
    json: PathBuf,
    ops: u64,
    sim_ms: u64,
    threads: usize,
    serial: bool,
    parallel: bool,
    tiers: bool,
    colocation: bool,
    fleet: bool,
    trace: bool,
    controller: bool,
    shard: Option<ShardSpec>,
    exec_workers: usize,
    merge: Vec<PathBuf>,
    compare: Option<PathBuf>,
    regress: f64,
}

/// `Ok(None)` means `--help` was requested (exit success, no run).
fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        json: PathBuf::from("results/BENCH_sweep.json"),
        ops: 300_000,
        sim_ms: 100,
        threads: 0,
        serial: true,
        parallel: true,
        tiers: true,
        colocation: true,
        fleet: true,
        trace: true,
        controller: true,
        shard: None,
        exec_workers: 0,
        merge: Vec::new(),
        compare: None,
        regress: 0.15,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter().peekable();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => {
                args.json = PathBuf::from(it.next().ok_or("--json needs a path")?);
            }
            "--ops" => {
                args.ops = it
                    .next()
                    .ok_or("--ops needs a number")?
                    .parse()
                    .map_err(|e| format!("--ops: {e}"))?;
            }
            "--sim-ms" => {
                args.sim_ms = it
                    .next()
                    .ok_or("--sim-ms needs a number")?
                    .parse()
                    .map_err(|e| format!("--sim-ms: {e}"))?;
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .ok_or("--threads needs a number")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--serial-only" => args.parallel = false,
            "--parallel-only" => args.serial = false,
            "--no-tiers" => args.tiers = false,
            "--no-colocation" => args.colocation = false,
            "--no-fleet" => args.fleet = false,
            "--no-trace" => args.trace = false,
            "--no-controller" => args.controller = false,
            "--shard" => {
                args.shard = Some(
                    it.next()
                        .ok_or("--shard needs i/N (0-based)")?
                        .parse()
                        .map_err(|e| format!("--shard: {e}"))?,
                );
            }
            "--exec-workers" => {
                args.exec_workers = it
                    .next()
                    .ok_or("--exec-workers needs a worker count")?
                    .parse()
                    .map_err(|e| format!("--exec-workers: {e}"))?;
                if args.exec_workers == 0 {
                    return Err("--exec-workers needs at least one worker".to_string());
                }
            }
            "--merge" => {
                while let Some(path) = it.peek() {
                    if path.starts_with("--") {
                        break;
                    }
                    args.merge.push(PathBuf::from(it.next().expect("peeked")));
                }
                if args.merge.is_empty() {
                    return Err("--merge needs at least one shard json path".to_string());
                }
            }
            "--compare" => {
                args.compare = Some(PathBuf::from(it.next().ok_or("--compare needs a path")?));
            }
            "--regress" => {
                args.regress = it
                    .next()
                    .ok_or("--regress needs a fraction")?
                    .parse()
                    .map_err(|e| format!("--regress: {e}"))?;
                if !(0.0..1.0).contains(&args.regress) {
                    return Err("--regress must be in [0, 1)".to_string());
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench [--json <path>] [--ops <n>] [--sim-ms <n>] [--threads <n>] \
                     [--serial-only] [--parallel-only] [--no-tiers] [--no-colocation] \
                     [--no-fleet] [--no-trace] [--no-controller] [--shard <i/N>] \
                     [--exec-workers <n>] \
                     [--merge <shard.json>...] [--compare <prev.json>] [--regress <frac>]\n\
                     json schema and shard/merge workflow: docs/BENCH_FORMAT.md"
                );
                return Ok(None);
            }
            other => return Err(format!("unknown flag '{other}'; try --help")),
        }
    }
    if !args.serial && !args.parallel {
        return Err("--serial-only and --parallel-only are mutually exclusive".to_string());
    }
    if args.shard.is_some() && args.compare.is_some() {
        return Err(
            "--shard runs a slice of each sweep; --compare against a full run would \
             mislead. Merge the shards first, then compare the merged json."
                .to_string(),
        );
    }
    if !args.merge.is_empty() && (args.shard.is_some() || args.compare.is_some()) {
        return Err("--merge only reads shard jsons; drop --shard/--compare".to_string());
    }
    if args.exec_workers > 0 {
        if args.shard.is_some() {
            return Err(
                "--exec-workers shards each sweep internally; it cannot run inside a \
                 --shard slice"
                    .to_string(),
            );
        }
        if !args.merge.is_empty() {
            return Err("--merge only reads shard jsons; drop --exec-workers".to_string());
        }
        if !args.parallel {
            return Err("--exec-workers drives the parallel pass; drop --serial-only".to_string());
        }
    }
    Ok(Some(args))
}

/// `--merge` mode: no simulations, just validate + reassemble shard jsons.
fn run_merge(args: &Args) -> Result<String, String> {
    let mut docs = Vec::with_capacity(args.merge.len());
    for path in &args.merge {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let doc =
            json::parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
        docs.push(doc);
    }
    let merged = merge::merge_docs(&docs).map_err(|e| format!("merge failed: {e}"))?;
    for section in merge::SECTIONS {
        if let Some(n) = merged.get(section).and_then(|s| s.num("scenarios")) {
            println!(
                "merged '{section}': {n} scenarios from {} shards",
                args.merge.len()
            );
        }
    }
    Ok(merged.render())
}

/// One sweep's passes: timing, agreement, and the full-matrix size the
/// (possibly sharded) scenario list was cut from.
struct SweepPasses {
    serial: Option<SweepReport>,
    parallel: Option<SweepReport>,
    identical: Option<bool>,
    speedup: Option<f64>,
    matrix_len: usize,
    exec: Option<FleetExecReport>,
}

/// Times one scenario list serial and/or parallel — only this host's shard
/// of it when `--shard` is set. With `--exec-workers` the parallel pass
/// runs through the fleet executor (worker loss, retry, and reassignment
/// handling live) and the executor's event log rides along. Returns the
/// passes, whether they agreed, and the speedup; `Err` when the fleet
/// executor could not complete the sweep.
fn run_sweep(
    name: &str,
    args: &Args,
    build: impl Fn() -> Vec<Scenario> + Send + Sync + Clone + 'static,
) -> Result<SweepPasses, String> {
    let matrix_len = build().len();
    // Shard selection happens on the full canonical list, so per-scenario
    // seeds are identical sharded or not (the runner's shard guarantee).
    let scenarios = || match args.shard {
        Some(spec) => spec.select(build()),
        None => build(),
    };
    match args.shard {
        Some(spec) => println!(
            "{name}: {} of {matrix_len} scenarios (shard {spec})",
            spec.count_of(matrix_len)
        ),
        None => println!("{name}: {matrix_len} scenarios"),
    }
    let mut serial: Option<SweepReport> = None;
    if args.serial {
        let sweep = SweepRunner::serial().run(scenarios());
        println!("serial:   {:>8.2}s on 1 thread", sweep.wall.as_secs_f64());
        serial = Some(sweep);
    }
    let mut parallel: Option<SweepReport> = None;
    let mut exec: Option<FleetExecReport> = None;
    if args.parallel {
        if args.exec_workers > 0 {
            // 2 shards per worker: enough slack that a lost worker's
            // shards spread across survivors instead of serializing.
            let shards = (args.exec_workers * 2).clamp(1, matrix_len.max(1));
            let fleet = sweep_coordinator(build.clone(), args.exec_workers, FleetConfig::default())
                .run_sweep(shards)
                .map_err(|e| format!("{name}: fleet executor failed: {e}"))?;
            println!(
                "exec:     {:>8.2}s across {} workers ({} shards, {} lost, {} retries)",
                fleet.report.wall.as_secs_f64(),
                args.exec_workers,
                shards,
                fleet.exec.workers_lost,
                fleet.exec.retries
            );
            parallel = Some(fleet.report);
            exec = Some(fleet.exec);
        } else {
            let sweep = SweepRunner::new(args.threads).run(scenarios());
            println!(
                "parallel: {:>8.2}s on {} threads",
                sweep.wall.as_secs_f64(),
                sweep.threads
            );
            parallel = Some(sweep);
        }
    }
    let identical = match (&serial, &parallel) {
        (Some(s), Some(p)) => {
            let same = s.same_outcomes(p);
            if same {
                println!("parallel results identical to serial: yes");
            } else {
                eprintln!("ERROR: {name} parallel results diverged from serial");
            }
            Some(same)
        }
        _ => None,
    };
    let speedup = match (&serial, &parallel) {
        (Some(s), Some(p)) => {
            let x = s.wall.as_secs_f64() / p.wall.as_secs_f64().max(1e-9);
            println!("speedup:  {x:>8.2}x");
            Some(x)
        }
        _ => None,
    };
    Ok(SweepPasses {
        serial,
        parallel,
        identical,
        speedup,
        matrix_len,
        exec,
    })
}

impl SweepPasses {
    /// This sweep's JSON section (see `merge::sweep_section_json`).
    fn to_json(&self, shard: Option<ShardSpec>) -> String {
        merge::sweep_section_json(
            &self.serial,
            &self.parallel,
            self.identical,
            self.speedup,
            shard.map(|spec| (spec, self.matrix_len)),
        )
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    if !args.merge.is_empty() {
        let merged = match run_merge(&args) {
            Ok(m) => m,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        };
        return write_json(&args, &merged);
    }

    let ops = args.ops;
    let single = match run_sweep(
        &format!("policy-comparison sweep ({ops} ops/scenario)"),
        &args,
        move || policy_comparison_matrix(ops),
    ) {
        Ok(passes) => passes,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let sim_ns = args.sim_ms * 1_000_000;
    let mut colo = None;
    if args.colocation {
        println!();
        colo = match run_sweep(
            &format!("co-location sweep ({} simulated ms/scenario)", args.sim_ms),
            &args,
            move || colocation_matrix(sim_ns),
        ) {
            Ok(passes) => Some(passes),
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        };
    }

    let mut fleet = None;
    if args.fleet {
        println!();
        fleet = match run_sweep(
            &format!(
                "fleet churn sweep ({} simulated ms/scenario, objectives x budgets)",
                args.sim_ms
            ),
            &args,
            move || fleet_matrix(sim_ns),
        ) {
            Ok(passes) => Some(passes),
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        };
    }

    // The tier-ladder sweep runs *after* the legacy sections even though it
    // is emitted right after "single" in the JSON: wall clocks drift with a
    // process's position in a long run (thermal/steal effects on shared
    // hosts), so new sections must append at the end of the run order to
    // keep the pre-existing sections comparable against old baselines —
    // the timing analogue of the ScenarioMatrix seed-preservation rule.
    let mut tiers = None;
    if args.tiers {
        println!();
        tiers = match run_sweep(
            &format!("tier-ladder sweep ({ops} ops/scenario, 3- and 4-tier presets)"),
            &args,
            move || tier_ladder_matrix(ops),
        ) {
            Ok(passes) => Some(passes),
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        };
    }

    // Controller scaling probe: host-local micro-timings (no serial /
    // parallel passes to reconcile), so it is skipped on sharded runs —
    // the merged document gets it from whichever host runs unsharded.
    let mut controller = None;
    if args.controller && args.shard.is_none() {
        println!("\ncontroller scaling probe (10^3/10^4/10^5 tenants):");
        controller = Some(controller_section(
            &[1_000, 10_000, 100_000],
            args.ops,
            hybridtier_bench::SEED,
        ));
    }

    // Trace-replay sweep: newest axis, so it runs last (the same
    // append-at-end timing rule the tier-ladder comment above explains).
    // The inputs are recorded fresh (untimed) into the temp dir with
    // ops-independent names, so scenario labels — the compare gate's join
    // keys — are stable across --ops protocols.
    let mut trace = None;
    if args.trace {
        let trace_dir = std::env::temp_dir().join("hybridtier-bench-traces");
        let traces = match hybridtier_bench::record_trace_inputs(ops, &trace_dir) {
            Ok(paths) => paths,
            Err(e) => {
                eprintln!("cannot record trace inputs: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!();
        trace = match run_sweep(
            &format!("trace-replay sweep ({ops} ops/scenario, recorded CacheLib traces)"),
            &args,
            move || hybridtier_bench::trace_replay_matrix(ops, &traces),
        ) {
            Ok(passes) => Some(passes),
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        };
    }

    // Assemble the BENCH json around the richer of each sweep's reports.
    // Timing fields live under "single"/"colocation"/"fleet" per sweep
    // (the PR-1 format had them at top level; CHANGES.md records the
    // move); full schema in docs/BENCH_FORMAT.md.
    let mut json = String::from("{\"bench\":\"policy_comparison_sweep\"");
    json.push_str(&format!(",\"ops_per_scenario\":{}", args.ops));
    if let Some(spec) = args.shard {
        json.push_str(&format!(
            ",\"shard\":{{\"index\":{},\"total\":{}}}",
            spec.index(),
            spec.total()
        ));
    }
    json.push_str(&format!(",\"single\":{}", single.to_json(args.shard)));
    if let Some(passes) = &tiers {
        json.push_str(&format!(",\"tiers\":{}", passes.to_json(args.shard)));
    }
    if let Some(passes) = &colo {
        json.push_str(&format!(",\"colocation\":{}", passes.to_json(args.shard)));
    }
    if let Some(passes) = &fleet {
        json.push_str(&format!(",\"fleet\":{}", passes.to_json(args.shard)));
    }
    if let Some(passes) = &trace {
        json.push_str(&format!(",\"trace\":{}", passes.to_json(args.shard)));
    }
    if let Some(section) = &controller {
        json.push_str(&format!(",\"controller\":{}", section.render()));
    }
    // The executor's sealed account of each sweep, one member per sweep
    // section it drove (schema: docs/BENCH_FORMAT.md).
    if args.exec_workers > 0 {
        let mut section = json::Json::obj();
        section.set("workers", json::Json::Int(args.exec_workers as i128));
        for (name, passes) in [
            ("single", Some(&single)),
            ("tiers", tiers.as_ref()),
            ("colocation", colo.as_ref()),
            ("fleet", fleet.as_ref()),
            ("trace", trace.as_ref()),
        ] {
            if let Some(exec) = passes.and_then(|p| p.exec.as_ref()) {
                section.set(name, fleet_exec_json(exec));
            }
        }
        json.push_str(&format!(",\"fleet_exec\":{}", section.render()));
    }
    json.push('}');

    let identical = single.identical;
    let tiers_identical = tiers.as_ref().and_then(|p| p.identical);
    let colo_identical = colo.as_ref().and_then(|p| p.identical);
    let fleet_identical = fleet.as_ref().and_then(|p| p.identical);
    let trace_identical = trace.as_ref().and_then(|p| p.identical);

    // Perf-trajectory comparison against a previous BENCH json: print
    // deltas, embed them machine-readably, and flag regressions.
    let mut regressed = false;
    if let Some(prev_path) = &args.compare {
        let prev_text = match std::fs::read_to_string(prev_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", prev_path.display());
                return ExitCode::FAILURE;
            }
        };
        let prev = match json::parse(&prev_text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("cannot parse {}: {e}", prev_path.display());
                return ExitCode::FAILURE;
            }
        };
        let cur = json::parse(&json).expect("bench emits valid json");
        let mut deltas = Vec::new();
        for name in merge::SECTIONS {
            if let (Some(p), Some(c)) = (prev.get(name), cur.get(name)) {
                deltas.push(SweepDelta::between(
                    name,
                    &SweepSnapshot::from_json(p),
                    &SweepSnapshot::from_json(c),
                ));
            }
        }
        // The control plane's gate rides in the same compare array.
        let controller_delta = match (prev.get("controller"), cur.get("controller")) {
            (Some(p), Some(c)) => Some(ControllerDelta::between(p, c)),
            _ => None,
        };
        // Sections present on only one side produce no delta above, so a
        // baseline missing a whole sweep would otherwise pass unremarked —
        // the gate would silently cover less than it appears to.
        let drift = SectionDrift::between(
            &prev,
            &cur,
            merge::SECTIONS.into_iter().chain(["controller"]),
        );
        println!(
            "\ncompare vs {} (regression threshold {:.0}%):",
            prev_path.display(),
            args.regress * 100.0
        );
        print!("{}", drift.render());
        for d in &deltas {
            print!("{}", d.render());
        }
        if let Some(d) = &controller_delta {
            print!("{}", d.render());
        }
        json.pop(); // reopen the top-level object
        json.push_str(",\"compare\":[");
        json.push_str(&drift.to_json());
        for d in &deltas {
            json.push(',');
            json.push_str(&d.to_json());
        }
        if let Some(d) = &controller_delta {
            json.push(',');
            json.push_str(&d.to_json());
        }
        json.push_str("]}");
        regressed = deltas.iter().any(|d| d.regressed(args.regress))
            || controller_delta
                .as_ref()
                .is_some_and(|d| d.regressed(args.regress));
        if regressed {
            eprintln!(
                "REGRESSION: serial throughput fell more than {:.0}% below {}",
                args.regress * 100.0,
                prev_path.display()
            );
        }
    }

    let wrote = write_json(&args, &json);
    if wrote != ExitCode::SUCCESS {
        return wrote;
    }

    if identical == Some(false)
        || tiers_identical == Some(false)
        || colo_identical == Some(false)
        || fleet_identical == Some(false)
        || trace_identical == Some(false)
        || regressed
    {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Writes the finished document to `--json`, creating parent directories.
fn write_json(args: &Args, json: &str) -> ExitCode {
    if let Some(dir) = args.json.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    match std::fs::File::create(&args.json).and_then(|mut f| writeln!(f, "{json}")) {
        Ok(()) => println!("wrote {}", args.json.display()),
        Err(e) => {
            eprintln!("cannot write {}: {e}", args.json.display());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
