//! Sweep-driver benchmark: times the policy-comparison sweep serial vs
//! parallel and emits machine-readable `BENCH_*.json` so future PRs can
//! track the perf trajectory.
//!
//! ```text
//! cargo run -p hybridtier-bench --release --bin bench -- [flags]
//!
//!   --json <path>     write BENCH json here (default results/BENCH_sweep.json)
//!   --ops <n>         ops per scenario        (default 300000)
//!   --threads <n>     parallel worker threads (default: all cores)
//!   --serial-only     skip the parallel pass
//!   --parallel-only   skip the serial pass (no speedup reported)
//! ```
//!
//! The JSON records wall-clock seconds for each mode, the speedup, the
//! thread count, whether parallel results were byte-identical to serial,
//! and the full per-scenario result/timing breakdown of the last pass run.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use hybridtier_bench::policy_comparison_matrix;
use tiering_runner::{SweepReport, SweepRunner};

struct Args {
    json: PathBuf,
    ops: u64,
    threads: usize,
    serial: bool,
    parallel: bool,
}

/// `Ok(None)` means `--help` was requested (exit success, no run).
fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        json: PathBuf::from("results/BENCH_sweep.json"),
        ops: 300_000,
        threads: 0,
        serial: true,
        parallel: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => {
                args.json = PathBuf::from(it.next().ok_or("--json needs a path")?);
            }
            "--ops" => {
                args.ops = it
                    .next()
                    .ok_or("--ops needs a number")?
                    .parse()
                    .map_err(|e| format!("--ops: {e}"))?;
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .ok_or("--threads needs a number")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--serial-only" => args.parallel = false,
            "--parallel-only" => args.serial = false,
            "--help" | "-h" => {
                println!(
                    "usage: bench [--json <path>] [--ops <n>] [--threads <n>] \
                     [--serial-only] [--parallel-only]"
                );
                return Ok(None);
            }
            other => return Err(format!("unknown flag '{other}'; try --help")),
        }
    }
    Ok(Some(args))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let scenarios = policy_comparison_matrix(args.ops);
    println!(
        "policy-comparison sweep: {} scenarios x {} ops",
        scenarios.len(),
        args.ops
    );

    let mut serial: Option<SweepReport> = None;
    if args.serial {
        let sweep = SweepRunner::serial().run(policy_comparison_matrix(args.ops));
        println!("serial:   {:>8.2}s on 1 thread", sweep.wall.as_secs_f64());
        serial = Some(sweep);
    }

    let mut parallel: Option<SweepReport> = None;
    if args.parallel {
        let sweep = SweepRunner::new(args.threads).run(scenarios);
        println!(
            "parallel: {:>8.2}s on {} threads",
            sweep.wall.as_secs_f64(),
            sweep.threads
        );
        parallel = Some(sweep);
    }

    let identical = match (&serial, &parallel) {
        (Some(s), Some(p)) => {
            let same = s.same_outcomes(p);
            if same {
                println!("parallel results identical to serial: yes");
            } else {
                eprintln!("ERROR: parallel results diverged from serial");
            }
            Some(same)
        }
        _ => None,
    };
    let speedup = match (&serial, &parallel) {
        (Some(s), Some(p)) => {
            let x = s.wall.as_secs_f64() / p.wall.as_secs_f64().max(1e-9);
            println!("speedup:  {x:>8.2}x");
            Some(x)
        }
        _ => None,
    };

    // Assemble the BENCH json around the richer of the two sweep reports.
    let detail = parallel.as_ref().or(serial.as_ref()).expect("one pass ran");
    let mut json = String::from("{\"bench\":\"policy_comparison_sweep\"");
    json.push_str(&format!(",\"ops_per_scenario\":{}", args.ops));
    json.push_str(&format!(",\"scenarios\":{}", detail.results.len()));
    if let Some(s) = &serial {
        json.push_str(&format!(",\"serial_s\":{:.6}", s.wall.as_secs_f64()));
    }
    if let Some(p) = &parallel {
        json.push_str(&format!(
            ",\"parallel_s\":{:.6},\"threads\":{}",
            p.wall.as_secs_f64(),
            p.threads
        ));
    }
    if let Some(x) = speedup {
        json.push_str(&format!(",\"speedup\":{x:.4}"));
    }
    if let Some(same) = identical {
        json.push_str(&format!(",\"parallel_identical_to_serial\":{same}"));
    }
    json.push_str(",\"sweep\":");
    json.push_str(&detail.to_json());
    json.push('}');

    if let Some(dir) = args.json.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    match std::fs::File::create(&args.json).and_then(|mut f| writeln!(f, "{json}")) {
        Ok(()) => println!("wrote {}", args.json.display()),
        Err(e) => {
            eprintln!("cannot write {}: {e}", args.json.display());
            return ExitCode::FAILURE;
        }
    }

    if identical == Some(false) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
