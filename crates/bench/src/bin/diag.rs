//! Diagnostic: trace a policy's placement dynamics through the Figure 4
//! adaptation scenario (development/tuning tool).
//!
//! Usage: `diag [hybridtier|memtis|autonuma|tpp|arc|twoq] [ratio]`

use tiering_mem::{PageId, PageSize, Tier, TierConfig, TierRatio, TieredMemory};
use tiering_policies::{build_policy, PolicyCtx, PolicyKind};
use tiering_trace::{Sampler, Workload};
use tiering_workloads::{CacheLibConfig, CacheLibWorkload};

fn main() {
    let kind = match std::env::args().nth(1).as_deref() {
        Some("memtis") => PolicyKind::Memtis,
        Some("autonuma") => PolicyKind::AutoNuma,
        Some("tpp") => PolicyKind::Tpp,
        Some("arc") => PolicyKind::Arc,
        Some("twoq") => PolicyKind::TwoQ,
        _ => PolicyKind::HybridTier,
    };
    let ratio = match std::env::args().nth(2).as_deref() {
        Some("1:8") => TierRatio::OneTo8,
        Some("1:4") => TierRatio::OneTo4,
        _ => TierRatio::OneTo16,
    };
    let shift_ns = 2_000_000_000;
    let mut workload = CacheLibWorkload::new(
        CacheLibConfig::cdn()
            .with_uniform_size(16 << 10)
            .without_churn()
            .with_seed(0xA5F0_5EED)
            .with_shift(shift_ns, 2.0 / 3.0),
    );
    let pages = workload.footprint_pages(PageSize::Base4K);
    let tier_cfg = TierConfig::for_footprint(pages, ratio, PageSize::Base4K);
    let mut policy = build_policy(kind, &tier_cfg);
    let mut mem = TieredMemory::new(tier_cfg);
    let mut sampler = Sampler::new(19);
    let mut ctx = PolicyCtx::new();
    let latency = tiering_mem::LatencyModel::default();

    // Track which pages were fast at the shift instant ("stale set") and how
    // quickly the policy flushes them.
    let mut stale: Vec<PageId> = Vec::new();

    let mut now = 0u64;
    let mut next_tick = 1_000_000u64;
    let mut next_report = 200_000_000u64;
    let mut buf = Vec::new();
    let mut last = mem.stats();
    let (mut slow_hits, mut accesses, mut lat_sum, mut ops) = (0u64, 0u64, 0u64, 0u64);
    println!(
        "policy={} ratio={ratio} fast_cap={}",
        kind.label(),
        tier_cfg.fast_capacity_pages
    );
    println!(
        "{:>6} {:>9} {:>9} {:>7} {:>7} {:>10}",
        "t(s)", "mean(ns)", "slowfrac", "promo", "demo", "stale-left"
    );
    while now < 8_000_000_000 {
        buf.clear();
        let Some(op) = workload.next_op(now, &mut buf) else {
            break;
        };
        let mut op_ns = op.cpu_ns;
        for a in &buf {
            let page = a.page(PageSize::Base4K);
            let tier = mem.ensure_mapped(page, policy.preferred_alloc_tier());
            accesses += 1;
            if tier == Tier::Slow {
                slow_hits += 1;
            }
            op_ns += latency.access_ns(tier);
            if policy.wants_access_hook() {
                op_ns += policy.on_access(page, now, &mut mem, &mut ctx);
            }
            if let Some(s) = sampler.observe_full(a, tier, now, PageSize::Base4K) {
                policy.on_sample(s, &mut mem, &mut ctx);
            }
        }
        if now >= next_tick {
            policy.on_tick(now, &mut mem, &mut ctx);
            next_tick = now + 1_000_000;
        }
        let s = mem.stats();
        let moved = (s.promotions - last.promotions) + (s.demotions - last.demotions);
        let _ = moved;
        ctx.drain();
        now += op_ns.max(1);
        lat_sum += op_ns;
        ops += 1;

        if stale.is_empty() && now >= shift_ns {
            stale = mem
                .iter_mapped()
                .filter(|&(_, t)| t == Tier::Fast)
                .map(|(p, _)| p)
                .collect();
        }
        if now >= next_report {
            let s = mem.stats();
            let stale_left = stale
                .iter()
                .filter(|&&p| mem.tier_of(p) == Some(Tier::Fast))
                .count();
            println!(
                "{:>6.1} {:>9} {:>9.3} {:>7} {:>7} {:>10}  {}",
                now as f64 / 1e9,
                lat_sum / ops.max(1),
                slow_hits as f64 / accesses.max(1) as f64,
                s.promotions - last.promotions,
                s.demotions - last.demotions,
                stale_left,
                policy.debug_state(),
            );
            last = s;
            (slow_hits, accesses, lat_sum, ops) = (0, 0, 0, 0);
            next_report += 200_000_000;
        }
    }
}
