//! A minimal JSON reader for `BENCH_*.json` files.
//!
//! The workspace is dependency-free (no serde), and the bench driver only
//! needs to *read back* the JSON it wrote itself — numbers, strings,
//! objects, arrays — so this is a small recursive-descent parser over the
//! full JSON grammar with a value model tailored to that use.

use std::collections::HashMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (read as `f64`; BENCH files stay well within exact
    /// `f64` integer range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(HashMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, if this is an object and the key exists.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Convenience: `self.get(key).and_then(Json::as_f64)`.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Json::as_f64)
    }

    /// Convenience: `self.get(key).and_then(Json::as_str)`.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }
}

/// A parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = HashMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not produced by our writer;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a":1.5,"b":[true,false,null,"x\ny"],"c":{"d":-2e3}}"#).unwrap();
        assert_eq!(v.num("a"), Some(1.5));
        let b = v.get("b").unwrap().as_array().unwrap();
        assert_eq!(b[0], Json::Bool(true));
        assert_eq!(b[3], Json::Str("x\ny".into()));
        assert_eq!(v.get("c").unwrap().num("d"), Some(-2000.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a":1} extra"#).is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn round_trips_a_real_sweep_json() {
        use tiering_policies::PolicyKind;
        use tiering_runner::{ScenarioMatrix, SweepRunner};
        use tiering_sim::SimConfig;
        use tiering_workloads::WorkloadId;

        let sweep = SweepRunner::serial().run(
            ScenarioMatrix::new(SimConfig::default().with_max_ops(500), 7)
                .workloads([WorkloadId::Silo])
                .policies([PolicyKind::FirstTouch, PolicyKind::HybridTier])
                .build(),
        );
        let v = parse(&sweep.to_json()).expect("writer output parses");
        let scenarios = v.get("scenarios").unwrap().as_array().unwrap();
        assert_eq!(scenarios.len(), 2);
        assert_eq!(scenarios[0].num("ops"), Some(500.0));
        assert!(scenarios[0].str("label").unwrap().contains("silo"));
    }
}
