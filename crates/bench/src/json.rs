//! A minimal JSON reader/writer for `BENCH_*.json` files.
//!
//! The workspace is dependency-free (no serde), and the bench driver only
//! needs to *read back* (and, for `bench --merge`, re-emit) the JSON it
//! wrote itself — numbers, strings, objects, arrays — so this is a small
//! recursive-descent parser over the full JSON grammar with a value model
//! tailored to that use. Objects preserve member order (insertion /
//! document order), so a parse → [`render`](Json::render) round trip keeps
//! the writer's layout and merged shard files stay diffable against
//! unsharded ones.

use std::fmt;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer-syntax number (no `.`/exponent), kept exact: BENCH
    /// scenario seeds are full 64-bit values that `f64` would round, and
    /// the `--merge` workflow must copy them through bit-perfectly.
    Int(i128),
    /// Any other JSON number (read as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in member order. Lookup is a linear scan — BENCH objects
    /// have at most a few dozen members.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object, if this is an object and the key exists
    /// (first occurrence wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// An empty object (builder entry point for the merge tooling).
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends/overwrites member `key` of an object; panics on non-objects
    /// (merge tooling builds objects it just created).
    pub fn set(&mut self, key: &str, value: Json) {
        match self {
            Json::Obj(m) => {
                if let Some(slot) = m.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    m.push((key.to_string(), value));
                }
            }
            _ => panic!("Json::set on a non-object"),
        }
    }

    /// Serializes back to compact JSON text, preserving object member
    /// order. Integer-syntax numbers round-trip byte-exactly; `f64`s render
    /// via Rust's shortest-round-trip display (whole values keep a `.1`
    /// decimal so they stay `Num` on re-parse), so `render(parse(x))` is
    /// value-identical to `x` though not necessarily byte-identical (the
    /// writer pads decimals, e.g. `0.500000`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(n) => {
                // Keep non-integer syntax so a re-parse stays `Num`, making
                // parse ∘ render a fixed point: decimal point for values in
                // exact-i64 range, exponent form beyond it (where `{:.1}`
                // would lose the magnitude's tail and `{}` prints integer
                // syntax that would re-parse as `Int`).
                if n.fract() == 0.0 && n.is_finite() {
                    if n.abs() < 9e15 {
                        let _ = write!(out, "{:.1}", *n);
                    } else {
                        let _ = write!(out, "{n:e}");
                    }
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// This value as a number (integers convert, rounding past 2^53 — use
    /// [`as_i128`](Json::as_i128) where exactness matters).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// This value as an exact integer, if it was written in integer syntax.
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Convenience: `self.get(key).and_then(Json::as_f64)`.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Json::as_f64)
    }

    /// Convenience: `self.get(key).and_then(Json::as_str)`.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }
}

/// JSON string quoting (mirrors the runner's writer escapes).
fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not produced by our writer;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {}
                b'.' | b'e' | b'E' | b'+' | b'-' => integral = false,
                _ => break,
            }
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if integral {
            // Integer syntax stays exact (u64 seeds overflow f64's 2^53).
            if let Ok(n) = text.parse::<i128>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a":1.5,"b":[true,false,null,"x\ny"],"c":{"d":-2e3}}"#).unwrap();
        assert_eq!(v.num("a"), Some(1.5));
        let b = v.get("b").unwrap().as_array().unwrap();
        assert_eq!(b[0], Json::Bool(true));
        assert_eq!(b[3], Json::Str("x\ny".into()));
        assert_eq!(v.get("c").unwrap().num("d"), Some(-2000.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a":1} extra"#).is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn round_trips_a_real_sweep_json() {
        use tiering_policies::PolicyKind;
        use tiering_runner::{ScenarioMatrix, SweepRunner};
        use tiering_sim::SimConfig;
        use tiering_workloads::WorkloadId;

        let sweep = SweepRunner::serial().run(
            ScenarioMatrix::new(SimConfig::default().with_max_ops(500), 7)
                .workloads([WorkloadId::Silo])
                .policies([PolicyKind::FirstTouch, PolicyKind::HybridTier])
                .build(),
        );
        let v = parse(&sweep.to_json()).expect("writer output parses");
        let scenarios = v.get("scenarios").unwrap().as_array().unwrap();
        assert_eq!(scenarios.len(), 2);
        assert_eq!(scenarios[0].num("ops"), Some(500.0));
        assert!(scenarios[0].str("label").unwrap().contains("silo"));
        assert_eq!(
            scenarios[0].str("fingerprint").unwrap().len(),
            16,
            "hex outcome digest present"
        );
        // render → parse is a fixed point: member order is preserved, so
        // one round trip canonicalizes number formatting and nothing else.
        let rendered = v.render();
        let reparsed = parse(&rendered).unwrap();
        assert_eq!(reparsed, v);
        assert_eq!(reparsed.render(), rendered);
    }

    #[test]
    fn big_integers_stay_exact() {
        // u64-range seeds are beyond f64's 2^53 exact-integer range; the
        // merge workflow depends on them surviving parse → render.
        let text = r#"{"seed":13173058152101329326,"neg":-9007199254740993}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("seed").unwrap().as_i128(), Some(13173058152101329326));
        assert_eq!(v.get("neg").unwrap().as_i128(), Some(-9007199254740993));
        assert_eq!(v.render(), text);
        // Non-integer syntax still reads as f64.
        assert_eq!(parse("1.5").unwrap().as_i128(), None);
        assert_eq!(parse("2e3").unwrap().as_f64(), Some(2000.0));
        // Whole-valued f64s beyond exact-i64 range keep float syntax, so
        // parse ∘ render is a fixed point there too (1e16 must not come
        // back as integer syntax / `Int`).
        let big = parse("1e16").unwrap();
        assert_eq!(big, Json::Num(1e16));
        assert_eq!(parse(&big.render()).unwrap(), big);
    }

    #[test]
    fn object_order_and_set() {
        let v = parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#, "member order preserved");
        let mut o = Json::obj();
        o.set("x", Json::Num(1.5));
        o.set("s", Json::Str("a\"b".into()));
        o.set("x", Json::Num(2.0)); // overwrite keeps position
        o.set("n", Json::Int(7));
        assert_eq!(o.render(), r#"{"x":2.0,"s":"a\"b","n":7}"#);
    }
}
