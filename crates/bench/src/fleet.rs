//! The `"fleet_exec"` BENCH json section: the fleet executor's sealed
//! [`FleetExecReport`] — per-worker stats, summary counters, and the full
//! typed event log — rendered into the document a `bench --exec-workers N`
//! run writes. Schema: `docs/BENCH_FORMAT.md`.
//!
//! Everything in this section except the `Calibrated` weights (and any
//! genuinely wall-clock-driven `timed_out` events) is deterministic for a
//! given worker fleet, shard count, and fault plan: the `at` field is a
//! logical timestamp (gapless dispatch-order sequence), not a clock
//! reading.

use fleet_exec::{FleetEventKind, FleetExecReport};

use crate::json::Json;

/// Renders one sweep's executor report as a JSON object (the value side of
/// a `"fleet_exec"` section member).
pub fn fleet_exec_json(report: &FleetExecReport) -> Json {
    let mut out = Json::obj();
    let workers: Vec<Json> = report
        .workers
        .iter()
        .map(|w| {
            let mut o = Json::obj();
            o.set("label", Json::Str(w.label.clone()));
            o.set("weight", Json::Int(w.weight as i128));
            o.set("completed", Json::Int(w.completed as i128));
            o.set("lost", Json::Bool(w.lost));
            o
        })
        .collect();
    out.set("workers", Json::Arr(workers));
    out.set("shards", Json::Int(report.shards as i128));
    out.set("retries", Json::Int(report.retries as i128));
    out.set("timeouts", Json::Int(report.timeouts as i128));
    out.set("reassignments", Json::Int(report.reassignments as i128));
    out.set("workers_lost", Json::Int(report.workers_lost as i128));
    out.set("rejected", Json::Int(report.rejected as i128));
    out.set("stale_results", Json::Int(report.stale_results as i128));
    let events: Vec<Json> = report
        .events
        .iter()
        .map(|e| {
            let mut o = Json::obj();
            o.set("at", Json::Int(e.at as i128));
            o.set("worker", Json::Int(e.worker as i128));
            o.set("event", Json::Str(e.kind.name().to_string()));
            match &e.kind {
                FleetEventKind::Calibrated { weight } => {
                    o.set("weight", Json::Int(*weight as i128));
                }
                FleetEventKind::Assigned { shard, attempt }
                | FleetEventKind::Completed { shard, attempt }
                | FleetEventKind::TimedOut { shard, attempt }
                | FleetEventKind::StaleResult { shard, attempt } => {
                    o.set("shard", Json::Int(*shard as i128));
                    o.set("attempt", Json::Int(*attempt as i128));
                }
                FleetEventKind::Rejected {
                    shard,
                    attempt,
                    reason,
                } => {
                    o.set("shard", Json::Int(*shard as i128));
                    o.set("attempt", Json::Int(*attempt as i128));
                    o.set("reason", Json::Str(reason.clone()));
                }
                FleetEventKind::Retried {
                    shard,
                    attempt,
                    backoff_ms,
                } => {
                    o.set("shard", Json::Int(*shard as i128));
                    o.set("attempt", Json::Int(*attempt as i128));
                    o.set("backoff_ms", Json::Int(*backoff_ms as i128));
                }
                FleetEventKind::Reassigned { shard, from } => {
                    o.set("shard", Json::Int(*shard as i128));
                    o.set("from", Json::Int(*from as i128));
                }
                FleetEventKind::WorkerLost { reason } => {
                    o.set("reason", Json::Str(reason.clone()));
                }
            }
            o
        })
        .collect();
    out.set("events", Json::Arr(events));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use fleet_exec::{sweep_coordinator, FaultKind, FaultPlan, FleetConfig};
    use tiering_policies::PolicyKind;
    use tiering_runner::ScenarioMatrix;
    use tiering_sim::SimConfig;
    use tiering_workloads::WorkloadId;

    #[test]
    fn renders_a_parseable_section_with_the_full_event_log() {
        let matrix = || {
            ScenarioMatrix::new(SimConfig::default().with_max_ops(500), 0xF1E7)
                .workloads([WorkloadId::CdnCacheLib])
                .policies([PolicyKind::HybridTier, PolicyKind::FirstTouch])
                .build()
        };
        let fleet = sweep_coordinator(matrix, 2, FleetConfig::default())
            .with_faults(FaultPlan::new(vec![FaultKind::KillMid.on(1)]))
            .run_sweep(3)
            .expect("one loss of two is recoverable");
        let section = fleet_exec_json(&fleet.exec);
        let doc = parse(&section.render()).expect("section renders valid json");
        assert_eq!(
            doc.get("events")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(fleet.exec.events.len())
        );
        assert_eq!(doc.num("workers_lost"), Some(1.0));
        // The reason string (free text from the transport) is escaped.
        assert!(doc
            .get("events")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .any(|e| e.str("event") == Some("worker_lost") && e.str("reason").is_some()));
    }
}
