//! Shard-aware `BENCH_*.json` assembly and the JSON-level shard merge.
//!
//! The distributed-sweep workflow (`docs/BENCH_FORMAT.md`) is:
//!
//! 1. every host runs `bench --shard i/N --json shard_i.json` — same
//!    binary, same flags, different `i`. Each host builds the same full
//!    matrices and executes only its round-robin slice (seeds are derived
//!    from full-matrix positions, so sharding never changes what runs —
//!    the guarantee `tiering_runner`'s shard module pins);
//! 2. the shard files are collected anywhere and merged with
//!    `bench --merge shard_0.json ... shard_N-1.json --json merged.json`.
//!
//! [`merge_docs`] validates the union exactly like
//! `tiering_runner::SweepReport::merge` — rejecting overlapping
//! (duplicate-index or duplicate-label), missing, or inconsistent shards —
//! and reassembles each sweep section's scenario entries into canonical
//! matrix order. The merged document has the same shape as an unsharded
//! run's; scenario entries are copied through verbatim (value-level), so
//! every deterministic field (`ops`, `sim_ns`, percentiles, migrations,
//! `fingerprint`, …) is identical to the unsharded run's, and only
//! host-timing fields (`wall_s`, `serial_s`, `parallel_s`, `threads`,
//! `speedup`) reflect the distributed execution: wall times merge as the
//! **maximum** across shards (a distributed run is as slow as its slowest
//! host), thread counts as the sum. [`equal_ignoring`] makes that
//! "identical up to host timing" relation checkable.

use std::fmt;

use tiering_runner::{ShardSpec, SweepReport};

use crate::json::Json;

/// The sweep sections a BENCH document may carry, in canonical order.
/// `"trace"` is appended last (the PR-9 rule: new sections join at the end
/// so pre-existing sections stay comparable against old baselines).
pub const SECTIONS: [&str; 5] = ["single", "tiers", "colocation", "fleet", "trace"];

/// Serializes one sweep's timing section (the `"single"` /
/// `"colocation"` / `"fleet"` objects of a BENCH document). With `shard`
/// set, records the full-matrix scenario count (`"matrix_scenarios"`) the
/// shard was cut from — [`merge_docs`] needs it to validate and reassemble.
pub fn sweep_section_json(
    serial: &Option<SweepReport>,
    parallel: &Option<SweepReport>,
    identical: Option<bool>,
    speedup: Option<f64>,
    shard: Option<(ShardSpec, usize)>,
) -> String {
    use std::fmt::Write as _;

    let detail = parallel.as_ref().or(serial.as_ref()).expect("one pass ran");
    let mut json = String::new();
    let _ = write!(json, "{{\"scenarios\":{}", detail.results.len());
    if let Some((spec, matrix_len)) = shard {
        let _ = write!(
            json,
            ",\"shard_index\":{},\"shard_total\":{},\"matrix_scenarios\":{}",
            spec.index(),
            spec.total(),
            matrix_len
        );
    }
    if let Some(s) = serial {
        let _ = write!(json, ",\"serial_s\":{:.6}", s.wall.as_secs_f64());
    }
    if let Some(p) = parallel {
        let _ = write!(
            json,
            ",\"parallel_s\":{:.6},\"threads\":{}",
            p.wall.as_secs_f64(),
            p.threads
        );
    }
    if let Some(x) = speedup {
        let _ = write!(json, ",\"speedup\":{x:.4}");
    }
    if let Some(same) = identical {
        let _ = write!(json, ",\"parallel_identical_to_serial\":{same}");
    }
    json.push_str(",\"sweep\":");
    json.push_str(&detail.to_json());
    json.push('}');
    json
}

/// Why [`merge_docs`] rejected a set of shard documents.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeJsonError {
    /// No documents supplied.
    Empty,
    /// Document `doc` carries no `"shard"` object (not written with
    /// `bench --shard`).
    NotSharded {
        /// Position in the input list.
        doc: usize,
    },
    /// Two documents disagree on the shard count.
    MismatchedTotal {
        /// Count from the first document.
        expected: usize,
        /// The disagreeing count.
        found: usize,
    },
    /// The same shard index appears twice (overlapping shards).
    DuplicateShard {
        /// The repeated index.
        index: usize,
    },
    /// A shard index was never supplied (incomplete union).
    MissingShard {
        /// The absent index.
        index: usize,
    },
    /// A top-level field (protocol parameter) differs between shards.
    MismatchedField {
        /// The offending key.
        key: String,
    },
    /// A sweep section is present in some shards but not all.
    MismatchedSections {
        /// The section name.
        section: String,
    },
    /// Shards disagree on a section's full-matrix scenario count.
    MismatchedMatrixLen {
        /// The section name.
        section: String,
    },
    /// A shard's scenario count does not match its slice of the matrix.
    WrongShardLen {
        /// The section name.
        section: String,
        /// The offending shard index.
        index: usize,
        /// Entries its slice demands.
        expected: usize,
        /// Entries it carries.
        found: usize,
    },
    /// Two shards carry a scenario with the same label (overlapping
    /// matrices).
    DuplicateLabel {
        /// The section name.
        section: String,
        /// The repeated label.
        label: String,
    },
    /// Input `doc` is not valid JSON at all — a truncated or corrupted
    /// shard file (the fault injectors in `fleet-exec` produce exactly
    /// these).
    Unparseable {
        /// Position in the input list.
        doc: usize,
        /// The parser's diagnostic.
        detail: String,
    },
}

impl fmt::Display for MergeJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeJsonError::Empty => write!(f, "no shard files to merge"),
            MergeJsonError::NotSharded { doc } => write!(
                f,
                "input {doc} has no shard identity (was it written with --shard?)"
            ),
            MergeJsonError::MismatchedTotal { expected, found } => {
                write!(f, "shards disagree on shard count: {expected} vs {found}")
            }
            MergeJsonError::DuplicateShard { index } => {
                write!(f, "shard {index} supplied more than once (overlap)")
            }
            MergeJsonError::MissingShard { index } => write!(f, "shard {index} missing"),
            MergeJsonError::MismatchedField { key } => {
                write!(f, "shards disagree on '{key}' (different protocols?)")
            }
            MergeJsonError::MismatchedSections { section } => {
                write!(f, "section '{section}' present in some shards but not all")
            }
            MergeJsonError::MismatchedMatrixLen { section } => {
                write!(f, "shards disagree on '{section}' matrix size")
            }
            MergeJsonError::WrongShardLen {
                section,
                index,
                expected,
                found,
            } => write!(
                f,
                "section '{section}': shard {index} carries {found} scenarios, \
                 its slice demands {expected}"
            ),
            MergeJsonError::DuplicateLabel { section, label } => write!(
                f,
                "section '{section}': scenario '{label}' appears in two shards (overlap)"
            ),
            MergeJsonError::Unparseable { doc, detail } => {
                write!(
                    f,
                    "input {doc} is not valid JSON ({detail}) — truncated shard file?"
                )
            }
        }
    }
}

impl std::error::Error for MergeJsonError {}

/// Exact non-negative integer member: `1.5` and `-1` are *not* shard
/// indices (a float-coerced `-1` would otherwise saturate into slot 0 and
/// mis-bin the shard).
fn usize_field(doc: &Json, key: &str) -> Option<usize> {
    doc.get(key)
        .and_then(Json::as_i128)
        .and_then(|n| usize::try_from(n).ok())
}

/// Merges shard BENCH documents (any order) into one document shaped like
/// an unsharded run's. See the module docs for the validation and
/// reassembly rules.
pub fn merge_docs(docs: &[Json]) -> Result<Json, MergeJsonError> {
    if docs.is_empty() {
        return Err(MergeJsonError::Empty);
    }

    // Establish each document's shard identity and order them by index.
    let mut total: Option<usize> = None;
    let mut by_index: Vec<Option<&Json>> = Vec::new();
    for (i, doc) in docs.iter().enumerate() {
        let shard = doc
            .get("shard")
            .ok_or(MergeJsonError::NotSharded { doc: i })?;
        let (index, t) = match (usize_field(shard, "index"), usize_field(shard, "total")) {
            (Some(ix), Some(t)) if t > 0 && ix < t => (ix, t),
            _ => return Err(MergeJsonError::NotSharded { doc: i }),
        };
        let expected = *total.get_or_insert(t);
        if t != expected {
            return Err(MergeJsonError::MismatchedTotal { expected, found: t });
        }
        if by_index.is_empty() {
            by_index = vec![None; expected];
        }
        if by_index[index].is_some() {
            return Err(MergeJsonError::DuplicateShard { index });
        }
        by_index[index] = Some(doc);
    }
    if let Some(index) = by_index.iter().position(Option::is_none) {
        return Err(MergeJsonError::MissingShard { index });
    }
    let total = total.expect("at least one doc");
    let ordered: Vec<&Json> = by_index.into_iter().map(|d| d.expect("filled")).collect();

    // Walk shard 0's top-level members to keep the unsharded layout: drop
    // the shard identity, merge sweep sections, and copy everything else
    // through after checking the shards agree on it.
    let Json::Obj(members) = ordered[0] else {
        return Err(MergeJsonError::NotSharded { doc: 0 });
    };
    // Symmetric protocol check: a key only *other* shards carry (e.g. a
    // newer bench build's extra field) is just as foreign as a
    // disagreeing value, and must not vanish silently in the merge.
    // `"compare"` is exempt on both sides: it holds per-host perf deltas
    // (wall-clock ratios against some baseline file), which legitimately
    // differ host to host and cannot be meaningfully merged — it is
    // dropped, like the other host-timing fields are recomputed.
    for doc in &ordered[1..] {
        if let Json::Obj(other_members) = doc {
            for (key, _) in other_members {
                if key != "compare" && !members.iter().any(|(k, _)| k == key) {
                    return Err(MergeJsonError::MismatchedField { key: key.clone() });
                }
            }
        }
    }
    let mut out = Json::obj();
    for (key, value) in members {
        if key == "shard" || key == "compare" {
            continue;
        }
        if SECTIONS.contains(&key.as_str()) {
            out.set(key, merge_section(key, &ordered, total)?);
            continue;
        }
        for doc in &ordered[1..] {
            if doc.get(key) != Some(value) {
                return Err(MergeJsonError::MismatchedField { key: key.clone() });
            }
        }
        out.set(key, value.clone());
    }
    // A section only some shards ran (e.g. one host passed --no-fleet) is
    // an inconsistent union even when shard 0 lacks it.
    for section in SECTIONS {
        let present = ordered.iter().filter(|d| d.get(section).is_some()).count();
        if present != 0 && present != total {
            return Err(MergeJsonError::MismatchedSections {
                section: section.to_string(),
            });
        }
    }
    out.set("merged_from", Json::Int(total as i128));
    Ok(out)
}

/// [`merge_docs`] over raw file contents: parses each text (typed
/// [`MergeJsonError::Unparseable`] instead of a panic on truncated or
/// corrupted shard files) and merges. This is the text plane the
/// fleet executor's `ProcessWorker` artifacts feed.
pub fn merge_texts<S: AsRef<str>>(texts: &[S]) -> Result<Json, MergeJsonError> {
    let docs = texts
        .iter()
        .enumerate()
        .map(|(doc, text)| {
            crate::json::parse(text.as_ref()).map_err(|e| MergeJsonError::Unparseable {
                doc,
                detail: e.to_string(),
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    merge_docs(&docs)
}

/// Checks that `text` is a well-formed shard document for exactly `spec`:
/// parseable, carrying `spec`'s shard identity, with every sweep section's
/// scenario count matching its round-robin slice. The fleet executor uses
/// this as its artifact validator, so a corrupted or truncated shard json
/// is rejected (and the shard retried elsewhere) instead of poisoning the
/// final merge.
pub fn validate_shard_text(spec: ShardSpec, text: &str) -> Result<(), String> {
    let doc = crate::json::parse(text).map_err(|e| format!("unparseable shard json: {e}"))?;
    let shard = doc.get("shard").ok_or("document has no shard identity")?;
    let (index, total) = match (usize_field(shard, "index"), usize_field(shard, "total")) {
        (Some(ix), Some(t)) if t > 0 && ix < t => (ix, t),
        _ => return Err("document has no shard identity".to_string()),
    };
    if index != spec.index() || total != spec.total() {
        return Err(format!(
            "shard identity {index}/{total} does not match the assigned shard {spec}"
        ));
    }
    for section in SECTIONS {
        let Some(s) = doc.get(section) else { continue };
        let matrix_len = usize_field(s, "matrix_scenarios")
            .ok_or_else(|| format!("section '{section}' lacks matrix_scenarios"))?;
        let entries = s
            .get("sweep")
            .and_then(|sw| sw.get("scenarios"))
            .and_then(Json::as_array)
            .map_or(0, <[Json]>::len);
        let expected = spec.count_of(matrix_len);
        if entries != expected {
            return Err(format!(
                "section '{section}': {entries} scenarios, slice demands {expected}"
            ));
        }
    }
    Ok(())
}

/// Merges one sweep section across the index-ordered shard documents.
fn merge_section(name: &str, ordered: &[&Json], total: usize) -> Result<Json, MergeJsonError> {
    let section_err = || MergeJsonError::MismatchedSections {
        section: name.to_string(),
    };
    let sections: Vec<&Json> = ordered
        .iter()
        .map(|d| d.get(name).ok_or_else(section_err))
        .collect::<Result<_, _>>()?;

    // Full-matrix size: all shards must agree.
    let matrix_len = usize_field(sections[0], "matrix_scenarios")
        .ok_or(MergeJsonError::NotSharded { doc: 0 })?;
    if sections
        .iter()
        .any(|s| usize_field(s, "matrix_scenarios") != Some(matrix_len))
    {
        return Err(MergeJsonError::MismatchedMatrixLen {
            section: name.to_string(),
        });
    }

    // Per-shard scenario entries, validated against the slice sizes.
    let mut slices: Vec<std::slice::Iter<'_, Json>> = Vec::with_capacity(total);
    for (index, s) in sections.iter().enumerate() {
        let entries = s
            .get("sweep")
            .and_then(|sw| sw.get("scenarios"))
            .and_then(Json::as_array)
            .unwrap_or(&[]);
        // The ownership formula lives in one place: ShardSpec.
        let expected = ShardSpec::new(index, total)
            .expect("index ranges over 0..total")
            .count_of(matrix_len);
        if entries.len() != expected {
            return Err(MergeJsonError::WrongShardLen {
                section: name.to_string(),
                index,
                expected,
                found: entries.len(),
            });
        }
        slices.push(entries.iter());
    }

    // Round-robin reassembly into canonical matrix order, with label
    // overlap detection across shards.
    let mut merged_entries = Vec::with_capacity(matrix_len);
    let mut labels = std::collections::HashSet::new();
    for g in 0..matrix_len {
        let entry = slices[g % total].next().expect("validated above");
        if let Some(label) = entry.str("label") {
            if !labels.insert(label.to_string()) {
                return Err(MergeJsonError::DuplicateLabel {
                    section: name.to_string(),
                    label: label.to_string(),
                });
            }
        }
        merged_entries.push(entry.clone());
    }

    // Timing summary: max wall across hosts, summed workers.
    let fold = |key: &str, f: fn(f64, f64) -> f64| -> Option<f64> {
        sections
            .iter()
            .map(|s| s.num(key))
            .reduce(|a, b| match (a, b) {
                (Some(a), Some(b)) => Some(f(a, b)),
                _ => None,
            })
            .flatten()
    };
    let serial_s = fold("serial_s", f64::max);
    let parallel_s = fold("parallel_s", f64::max);
    let threads = fold("threads", |a, b| a + b);
    let identical = sections
        .iter()
        .map(|s| s.get("parallel_identical_to_serial"))
        .try_fold(true, |acc, v| match v {
            Some(Json::Bool(b)) => Some(acc && *b),
            _ => None,
        });

    let mut out = Json::obj();
    out.set("scenarios", Json::Int(matrix_len as i128));
    if let Some(s) = serial_s {
        out.set("serial_s", Json::Num(s));
    }
    if let Some(p) = parallel_s {
        out.set("parallel_s", Json::Num(p));
        if let Some(t) = threads {
            out.set("threads", Json::Int(t as i128));
        }
    }
    if let (Some(s), Some(p)) = (serial_s, parallel_s) {
        if p > 0.0 {
            out.set("speedup", Json::Num(s / p));
        }
    }
    if let Some(same) = identical {
        out.set("parallel_identical_to_serial", Json::Bool(same));
    }
    let sweep_wall = sections
        .iter()
        .filter_map(|s| s.get("sweep").and_then(|sw| sw.num("wall_s")))
        .fold(0.0, f64::max);
    let sweep_threads: f64 = sections
        .iter()
        .filter_map(|s| s.get("sweep").and_then(|sw| sw.num("threads")))
        .sum();
    let mut sweep = Json::obj();
    sweep.set("threads", Json::Int(sweep_threads as i128));
    sweep.set("wall_s", Json::Num(sweep_wall));
    sweep.set("scenarios", Json::Arr(merged_entries));
    out.set("sweep", sweep);
    Ok(out)
}

/// Deep value equality that skips object members named in `ignored` — the
/// "identical up to host timing" relation between a merged document and an
/// unsharded run (pass [`HOST_TIMING_KEYS`]). Arrays must match in length
/// and order.
pub fn equal_ignoring(a: &Json, b: &Json, ignored: &[&str]) -> bool {
    match (a, b) {
        (Json::Obj(ma), Json::Obj(mb)) => {
            let keys = |m: &[(String, Json)]| -> Vec<String> {
                m.iter()
                    .map(|(k, _)| k.clone())
                    .filter(|k| !ignored.contains(&k.as_str()))
                    .collect()
            };
            let (ka, kb) = (keys(ma), keys(mb));
            // Same member set (order-insensitive: the merge may append).
            let mut sa = ka.clone();
            let mut sb = kb.clone();
            sa.sort();
            sb.sort();
            sa == sb
                && ka.iter().all(|k| match (a.get(k), b.get(k)) {
                    (Some(va), Some(vb)) => equal_ignoring(va, vb, ignored),
                    _ => false,
                })
        }
        (Json::Arr(va), Json::Arr(vb)) => {
            va.len() == vb.len()
                && va
                    .iter()
                    .zip(vb)
                    .all(|(x, y)| equal_ignoring(x, y, ignored))
        }
        // Numbers compare across `Int`/`Num` variants: exactly when both
        // are integer-syntax, as `f64` when the merge constructed one side.
        (Json::Int(_) | Json::Num(_), Json::Int(_) | Json::Num(_)) => {
            match (a.as_i128(), b.as_i128()) {
                (Some(x), Some(y)) => x == y,
                _ => a.as_f64() == b.as_f64(),
            }
        }
        _ => a == b,
    }
}

/// The fields that legitimately differ between a sharded-and-merged run
/// and an unsharded one: host timing and merge provenance. Everything else
/// in a BENCH document is deterministic.
pub const HOST_TIMING_KEYS: &[&str] = &[
    "wall_s",
    "serial_s",
    "parallel_s",
    "threads",
    "speedup",
    "merged_from",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use tiering_policies::PolicyKind;
    use tiering_runner::{ScenarioMatrix, ShardedSweep, SweepRunner};
    use tiering_sim::SimConfig;
    use tiering_workloads::WorkloadId;

    fn matrix() -> Vec<tiering_runner::Scenario> {
        ScenarioMatrix::new(SimConfig::default().with_max_ops(1_000), 0xBE7C)
            .workloads([WorkloadId::CdnCacheLib, WorkloadId::Silo])
            .policies([PolicyKind::HybridTier, PolicyKind::FirstTouch])
            .build()
    }

    /// A BENCH document as `bench --shard i/N` would write it (serial-only,
    /// `"single"` section).
    fn shard_doc(spec: ShardSpec) -> Json {
        let matrix_len = matrix().len();
        let report = ShardedSweep::new(spec, SweepRunner::serial()).run(matrix());
        let section = sweep_section_json(
            &Some(report.sweep),
            &None,
            None,
            None,
            Some((spec, matrix_len)),
        );
        parse(&format!(
            "{{\"bench\":\"policy_comparison_sweep\",\"ops_per_scenario\":1000,\
             \"shard\":{{\"index\":{},\"total\":{}}},\"single\":{section}}}",
            spec.index(),
            spec.total()
        ))
        .unwrap()
    }

    /// The matching unsharded document.
    fn unsharded_doc() -> Json {
        let sweep = SweepRunner::serial().run(matrix());
        let section = sweep_section_json(&Some(sweep), &None, None, None, None);
        parse(&format!(
            "{{\"bench\":\"policy_comparison_sweep\",\"ops_per_scenario\":1000,\
             \"single\":{section}}}"
        ))
        .unwrap()
    }

    #[test]
    fn merged_shards_equal_unsharded_up_to_host_timing() {
        let docs: Vec<Json> = ShardSpec::all(3).map(shard_doc).collect();
        let merged = merge_docs(&docs).expect("complete union merges");
        let unsharded = unsharded_doc();
        assert!(
            equal_ignoring(&merged, &unsharded, HOST_TIMING_KEYS),
            "merged != unsharded:\n{}\n{}",
            merged.render(),
            unsharded.render()
        );
        // The deterministic per-scenario fields really are byte-equal:
        // labels, seeds, fingerprints in canonical order.
        let entries = |d: &Json| -> Vec<(String, i128, String)> {
            d.get("single")
                .unwrap()
                .get("sweep")
                .unwrap()
                .get("scenarios")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .map(|s| {
                    (
                        s.str("label").unwrap().to_string(),
                        s.get("seed").unwrap().as_i128().expect("exact seed"),
                        s.str("fingerprint").unwrap().to_string(),
                    )
                })
                .collect()
        };
        assert_eq!(entries(&merged), entries(&unsharded));
    }

    #[test]
    fn merge_is_order_invariant() {
        let mut docs: Vec<Json> = ShardSpec::all(3).map(shard_doc).collect();
        let forward = merge_docs(&docs).unwrap();
        docs.reverse();
        let backward = merge_docs(&docs).unwrap();
        assert_eq!(forward.render(), backward.render());
    }

    #[test]
    fn merge_rejects_bad_unions() {
        let docs: Vec<Json> = ShardSpec::all(3).map(shard_doc).collect();
        assert_eq!(merge_docs(&[]), Err(MergeJsonError::Empty));
        assert_eq!(
            merge_docs(&[docs[0].clone(), docs[2].clone()]),
            Err(MergeJsonError::MissingShard { index: 1 })
        );
        assert_eq!(
            merge_docs(&[docs[0].clone(), docs[1].clone(), docs[1].clone()]),
            Err(MergeJsonError::DuplicateShard { index: 1 })
        );
        let two_way = shard_doc(ShardSpec::new(0, 2).unwrap());
        assert_eq!(
            merge_docs(&[docs[0].clone(), two_way]),
            Err(MergeJsonError::MismatchedTotal {
                expected: 3,
                found: 2
            })
        );
        let unsharded = unsharded_doc();
        assert_eq!(
            merge_docs(&[unsharded]),
            Err(MergeJsonError::NotSharded { doc: 0 })
        );
        // Protocol mismatch.
        let mut other_ops = docs[1].clone();
        other_ops.set("ops_per_scenario", Json::Num(9.0));
        assert_eq!(
            merge_docs(&[docs[0].clone(), other_ops, docs[2].clone()]),
            Err(MergeJsonError::MismatchedField {
                key: "ops_per_scenario".into()
            })
        );
        // Symmetric: a key only a *non-zero* shard carries is foreign too.
        let mut extra = docs[2].clone();
        extra.set("future_field", Json::Bool(true));
        assert_eq!(
            merge_docs(&[docs[0].clone(), docs[1].clone(), extra]),
            Err(MergeJsonError::MismatchedField {
                key: "future_field".into()
            })
        );
    }

    #[test]
    fn solo_shard_merges_to_itself() {
        let doc = shard_doc(ShardSpec::solo());
        let merged = merge_docs(&[doc]).unwrap();
        assert!(equal_ignoring(&merged, &unsharded_doc(), HOST_TIMING_KEYS));
    }
}
