//! CSV output and table formatting helpers.

use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Writes one experiment's CSV into the results directory.
#[derive(Debug)]
pub struct CsvWriter {
    writer: BufWriter<File>,
    path: PathBuf,
}

impl CsvWriter {
    /// Creates `results/<name>.csv` under `out_dir`, creating the directory
    /// if needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(out_dir: &Path, name: &str) -> io::Result<Self> {
        fs::create_dir_all(out_dir)?;
        let path = out_dir.join(format!("{name}.csv"));
        Ok(Self {
            writer: BufWriter::new(File::create(&path)?),
            path,
        })
    }

    /// Writes one CSV row from string-ish cells.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn row<I, S>(&mut self, cells: I) -> io::Result<()>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let line: Vec<String> = cells.into_iter().map(|c| c.as_ref().to_string()).collect();
        writeln!(self.writer, "{}", line.join(","))
    }

    /// Flushes and reports the file path.
    ///
    /// # Errors
    ///
    /// Propagates flush errors.
    pub fn finish(mut self) -> io::Result<PathBuf> {
        self.writer.flush()?;
        Ok(self.path)
    }
}

/// Prints a section header for an experiment.
pub fn print_header(id: &str, title: &str) {
    println!();
    println!("=== {id}: {title} ===");
}

/// Formats a float with 3 significant decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("ht-bench-test");
        let mut w = CsvWriter::create(&dir, "unit").unwrap();
        w.row(["a", "b"]).unwrap();
        w.row([f3(1.0), f3(2.5)]).unwrap();
        let path = w.finish().unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "a,b\n1.000,2.500\n");
    }
}
