//! Perf-trajectory comparison: the current `bench` run against a previous
//! `BENCH_*.json`.
//!
//! Every perf PR regenerates `results/BENCH_sweep.json`; `bench --compare
//! prev.json` loads that committed snapshot, prints per-scenario and
//! aggregate wall/throughput deltas, and fails (non-zero exit) when the
//! current run is slower than the previous one by more than a configurable
//! threshold — a regression gate wired into CI.
//!
//! Comparison is throughput-based (`ops / serial second`, and per-scenario
//! `throughput_mops`), so runs with different `--ops` budgets remain
//! comparable.

use std::fmt::Write as _;

use crate::json::Json;

/// One sweep's numbers, extracted from a BENCH json section.
///
/// Throughputs here are **host** throughputs (simulated ops per host
/// second) — the `throughput_mops` field inside the json is *simulated*
/// throughput (ops per simulated second), which is deterministic and
/// therefore useless for perf tracking.
#[derive(Debug, Clone, Default)]
pub struct SweepSnapshot {
    /// Serial wall seconds, when the serial pass ran.
    pub serial_s: Option<f64>,
    /// Per-scenario `(label, wall_s, host_mops, ops)`.
    pub scenarios: Vec<(String, f64, f64, f64)>,
}

impl SweepSnapshot {
    /// Extracts a sweep section (`"single"` / `"colocation"` object shape).
    pub fn from_json(section: &Json) -> Self {
        let mut snap = SweepSnapshot {
            serial_s: section.num("serial_s"),
            scenarios: Vec::new(),
        };
        if let Some(list) = section
            .get("sweep")
            .and_then(|s| s.get("scenarios"))
            .and_then(Json::as_array)
        {
            for s in list {
                let wall = s.num("wall_s").unwrap_or(0.0);
                let ops = s.num("ops").unwrap_or(0.0);
                let host_mops = if wall > 0.0 { ops / wall / 1e6 } else { 0.0 };
                snap.scenarios.push((
                    s.str("label").unwrap_or("?").to_string(),
                    wall,
                    host_mops,
                    ops,
                ));
            }
        }
        snap
    }

    /// Total simulated operations across scenarios.
    pub fn total_ops(&self) -> f64 {
        self.scenarios.iter().map(|s| s.3).sum()
    }

    /// Aggregate serial throughput in Mops/s (total ops over serial wall).
    pub fn serial_throughput_mops(&self) -> Option<f64> {
        let s = self.serial_s?;
        if s <= 0.0 {
            return None;
        }
        Some(self.total_ops() / s / 1e6)
    }
}

/// Outcome of comparing one sweep section between two runs.
#[derive(Debug, Clone)]
pub struct SweepDelta {
    /// Which section (`single` / `colocation`).
    pub name: String,
    /// current aggregate serial throughput / previous (None when either
    /// side lacks a serial pass).
    pub throughput_ratio: Option<f64>,
    /// Per-scenario `(label, prev_mops, cur_mops, ratio)` for labels
    /// present in both runs.
    pub scenarios: Vec<(String, f64, f64, f64)>,
    /// Labels present in the current run but not the baseline. A silent
    /// matrix change would otherwise masquerade as a perf delta (the
    /// aggregate ratio still compares total-ops/serial-seconds across
    /// different scenario sets), so the report calls it out explicitly.
    pub added: Vec<String>,
    /// Labels present in the baseline but missing from the current run.
    pub removed: Vec<String>,
}

impl SweepDelta {
    /// Compares `cur` against `prev`.
    pub fn between(name: &str, prev: &SweepSnapshot, cur: &SweepSnapshot) -> Self {
        let throughput_ratio = match (prev.serial_throughput_mops(), cur.serial_throughput_mops()) {
            (Some(p), Some(c)) if p > 0.0 => Some(c / p),
            _ => None,
        };
        let mut scenarios = Vec::new();
        let mut added = Vec::new();
        for (label, _, cur_mops, _) in &cur.scenarios {
            match prev.scenarios.iter().find(|(l, ..)| l == label) {
                Some((_, _, prev_mops, _)) if *prev_mops > 0.0 => {
                    scenarios.push((label.clone(), *prev_mops, *cur_mops, cur_mops / prev_mops));
                }
                Some(_) => {}
                None => added.push(label.clone()),
            }
        }
        let removed = prev
            .scenarios
            .iter()
            .filter(|(l, ..)| !cur.scenarios.iter().any(|(cl, ..)| cl == l))
            .map(|(l, ..)| l.clone())
            .collect();
        Self {
            name: name.to_string(),
            throughput_ratio,
            scenarios,
            added,
            removed,
        }
    }

    /// Whether this delta violates the regression threshold: aggregate
    /// throughput below `1 - max_regression` of the previous run.
    pub fn regressed(&self, max_regression: f64) -> bool {
        matches!(self.throughput_ratio, Some(r) if r < 1.0 - max_regression)
    }

    /// Human-readable report: aggregate line plus the biggest per-scenario
    /// movers in both directions.
    pub fn render(&self) -> String {
        let mut out = String::new();
        match self.throughput_ratio {
            Some(r) => {
                let _ = writeln!(
                    out,
                    "{}: serial throughput {:.3}x vs previous ({})",
                    self.name,
                    r,
                    if r >= 1.0 { "faster" } else { "slower" }
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "{}: no serial pass on one side; per-scenario deltas only",
                    self.name
                );
            }
        }
        if !self.added.is_empty() || !self.removed.is_empty() {
            let _ = writeln!(
                out,
                "  matrix changed since baseline: {} matched, {} added, {} removed \
                 (aggregate ratio spans different scenario sets)",
                self.scenarios.len(),
                self.added.len(),
                self.removed.len()
            );
            for label in &self.added {
                let _ = writeln!(out, "  + {label} (not in baseline)");
            }
            for label in &self.removed {
                let _ = writeln!(out, "  - {label} (baseline only)");
            }
        }
        let mut ranked = self.scenarios.clone();
        ranked.sort_by(|a, b| a.3.total_cmp(&b.3));
        let show: Vec<&(String, f64, f64, f64)> = if ranked.len() <= 10 {
            ranked.iter().collect()
        } else {
            ranked
                .iter()
                .take(5)
                .chain(ranked.iter().rev().take(5).rev().collect::<Vec<_>>())
                .collect()
        };
        for (label, prev, cur, ratio) in show {
            let _ = writeln!(
                out,
                "  {label:32} {prev:8.3} -> {cur:8.3} Mops  ({ratio:.3}x)"
            );
        }
        out
    }

    /// Machine-readable JSON fragment for this delta.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(s, "{{\"sweep\":\"{}\"", self.name);
        if let Some(r) = self.throughput_ratio {
            let _ = write!(s, ",\"throughput_ratio\":{r:.6}");
        }
        let _ = write!(s, ",\"scenarios\":[");
        for (i, (label, prev, cur, ratio)) in self.scenarios.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"label\":\"{label}\",\"prev_mops\":{prev:.6},\"cur_mops\":{cur:.6},\
                 \"ratio\":{ratio:.6}}}"
            );
        }
        s.push(']');
        for (key, labels) in [("added", &self.added), ("removed", &self.removed)] {
            let _ = write!(s, ",\"{key}\":[");
            for (i, label) in labels.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{label}\"");
            }
            s.push(']');
        }
        s.push('}');
        s
    }
}

/// Presence drift between the two BENCH documents being compared: sections
/// of the comparable vocabulary that exist on only one side.
///
/// The per-section loop can only diff sections present in *both* documents,
/// so without this record a baseline whose whole `"fleet"` (or `"tiers"`,
/// or `"controller"`) section is missing — an older schema, or a run with
/// `--no-fleet` — would silently shrink the compared surface and the gate
/// would pass on a fraction of the workload it appears to cover. Drift is
/// reported loudly and embedded in the `"compare"` array, but is not by
/// itself a regression: skipping a sweep on one side is a legitimate
/// protocol choice (`--no-controller` on shards, schema growth across PRs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionDrift {
    /// Sections present in the current run but absent from the baseline.
    pub added: Vec<String>,
    /// Sections present in the baseline but absent from the current run.
    pub missing: Vec<String>,
}

impl SectionDrift {
    /// Compares section presence across `sections` (the sweep vocabulary
    /// plus `"controller"`).
    pub fn between<'a>(
        prev: &Json,
        cur: &Json,
        sections: impl IntoIterator<Item = &'a str>,
    ) -> Self {
        let mut added = Vec::new();
        let mut missing = Vec::new();
        for name in sections {
            match (prev.get(name).is_some(), cur.get(name).is_some()) {
                (false, true) => added.push(name.to_string()),
                (true, false) => missing.push(name.to_string()),
                _ => {}
            }
        }
        Self { added, missing }
    }

    /// No one-sided sections: both documents cover the same surface.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.missing.is_empty()
    }

    /// Human-readable report (empty string when nothing drifted).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            return out;
        }
        let _ = writeln!(
            out,
            "section coverage changed since baseline (one-sided sections are \
             NOT gated):"
        );
        for name in &self.added {
            let _ = writeln!(out, "  + {name} (not in baseline)");
        }
        for name in &self.missing {
            let _ = writeln!(out, "  - {name} (baseline only; unverified this run)");
        }
        out
    }

    /// Machine-readable JSON fragment, shaped like the sweep deltas so it
    /// rides in the same `"compare"` array.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"sweep\":\"sections\"");
        for (key, names) in [("added", &self.added), ("missing", &self.missing)] {
            let _ = write!(s, ",\"{key}\":[");
            for (i, name) in names.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{name}\"");
            }
            s.push(']');
        }
        s.push('}');
        s
    }
}

/// Outcome of comparing the `"controller"` scaling sections of two runs:
/// the control plane's regression gate, mirroring [`SweepDelta`] for the
/// data plane.
///
/// The gated quantity is incremental ns/rebalance at each tenant count
/// (wall-clock, like the sweep gates); the ratio is the geometric mean of
/// per-point speedups so one noisy point cannot dominate a 10³–10⁵ table.
#[derive(Debug, Clone)]
pub struct ControllerDelta {
    /// Per-point `(tenants, prev_ns, cur_ns, speedup)` where `speedup` is
    /// `prev / cur` (> 1 means the current run rebalances faster), for
    /// tenant counts present in both runs.
    pub points: Vec<(u64, f64, f64, f64)>,
    /// Geometric mean of the per-point speedups (None when no counts
    /// matched).
    pub ratio: Option<f64>,
}

impl ControllerDelta {
    /// Compares the current `"controller"` section against a previous one.
    pub fn between(prev: &Json, cur: &Json) -> Self {
        let rows = |doc: &Json| -> Vec<(u64, f64)> {
            doc.get("points")
                .and_then(Json::as_array)
                .map(|points| {
                    points
                        .iter()
                        .filter_map(|p| {
                            Some((
                                p.num("tenants")? as u64,
                                p.num("incremental_ns_per_rebalance")?,
                            ))
                        })
                        .collect()
                })
                .unwrap_or_default()
        };
        let prev_rows = rows(prev);
        let mut points = Vec::new();
        for (tenants, cur_ns) in rows(cur) {
            if let Some(&(_, prev_ns)) = prev_rows.iter().find(|(t, _)| *t == tenants) {
                if prev_ns > 0.0 && cur_ns > 0.0 {
                    points.push((tenants, prev_ns, cur_ns, prev_ns / cur_ns));
                }
            }
        }
        let ratio = if points.is_empty() {
            None
        } else {
            let log_sum: f64 = points.iter().map(|(_, _, _, r)| r.ln()).sum();
            Some((log_sum / points.len() as f64).exp())
        };
        Self { points, ratio }
    }

    /// Whether the control plane regressed past the threshold: mean
    /// rebalance speedup below `1 - max_regression`.
    pub fn regressed(&self, max_regression: f64) -> bool {
        matches!(self.ratio, Some(r) if r < 1.0 - max_regression)
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        match self.ratio {
            Some(r) => {
                let _ = writeln!(
                    out,
                    "controller: incremental rebalance {:.3}x vs previous ({})",
                    r,
                    if r >= 1.0 { "faster" } else { "slower" }
                );
            }
            None => {
                let _ = writeln!(out, "controller: no matching tenant counts to compare");
            }
        }
        for (tenants, prev, cur, ratio) in &self.points {
            let _ = writeln!(
                out,
                "  n={tenants:<8} {prev:10.0} -> {cur:10.0} ns/rebalance  ({ratio:.3}x)"
            );
        }
        out
    }

    /// Machine-readable JSON fragment, shaped like the sweep deltas so it
    /// rides in the same `"compare"` array.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"sweep\":\"controller\"");
        if let Some(r) = self.ratio {
            let _ = write!(s, ",\"rebalance_ratio\":{r:.6}");
        }
        s.push_str(",\"points\":[");
        for (i, (tenants, prev, cur, ratio)) in self.points.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"tenants\":{tenants},\"prev_ns\":{prev:.1},\"cur_ns\":{cur:.1},\
                 \"ratio\":{ratio:.6}}}"
            );
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn snap(serial_s: f64, scenarios: &[(&str, f64, f64)]) -> SweepSnapshot {
        SweepSnapshot {
            serial_s: Some(serial_s),
            scenarios: scenarios
                .iter()
                .map(|(l, mops, ops)| (l.to_string(), 0.0, *mops, *ops))
                .collect(),
        }
    }

    #[test]
    fn extracts_snapshot_from_bench_json() {
        let doc = parse(
            r#"{"single":{"scenarios":2,"serial_s":0.5,"sweep":{"threads":1,"wall_s":0.5,
                "scenarios":[
                 {"label":"a","wall_s":0.2,"ops":1000,"throughput_mops":0.005},
                 {"label":"b","wall_s":0.3,"ops":2000,"throughput_mops":0.006}]}}}"#,
        )
        .unwrap();
        let s = SweepSnapshot::from_json(doc.get("single").unwrap());
        assert_eq!(s.serial_s, Some(0.5));
        assert_eq!(s.scenarios.len(), 2);
        assert_eq!(s.total_ops(), 3000.0);
        let t = s.serial_throughput_mops().unwrap();
        assert!((t - 3000.0 / 0.5 / 1e6).abs() < 1e-12);
    }

    #[test]
    fn ratio_and_regression_gate() {
        let prev = snap(1.0, &[("a", 1.0, 1_000_000.0)]);
        let fast = snap(0.5, &[("a", 2.0, 1_000_000.0)]);
        let slow = snap(2.0, &[("a", 0.5, 1_000_000.0)]);
        let up = SweepDelta::between("single", &prev, &fast);
        assert!((up.throughput_ratio.unwrap() - 2.0).abs() < 1e-9);
        assert!(!up.regressed(0.1));
        let down = SweepDelta::between("single", &prev, &slow);
        assert!((down.throughput_ratio.unwrap() - 0.5).abs() < 1e-9);
        assert!(down.regressed(0.1));
        // Inside the tolerance band: not a regression.
        let slight = snap(1.05, &[("a", 0.95, 1_000_000.0)]);
        assert!(!SweepDelta::between("single", &prev, &slight).regressed(0.10));
    }

    #[test]
    fn per_scenario_deltas_match_by_label() {
        let prev = snap(1.0, &[("a", 1.0, 1.0), ("gone", 9.9, 1.0)]);
        let cur = snap(1.0, &[("a", 1.5, 1.0), ("new", 1.0, 1.0)]);
        let d = SweepDelta::between("single", &prev, &cur);
        assert_eq!(d.scenarios.len(), 1);
        assert_eq!(d.scenarios[0].0, "a");
        assert!((d.scenarios[0].3 - 1.5).abs() < 1e-9);
        let json = d.to_json();
        assert!(json.contains("\"ratio\":1.5"));
        assert!(d.render().contains("1.500x"));
    }

    #[test]
    fn matrix_drift_is_reported_not_swallowed() {
        let prev = snap(
            1.0,
            &[("a", 1.0, 1.0), ("gone", 9.9, 1.0), ("also-gone", 2.0, 1.0)],
        );
        let cur = snap(1.0, &[("a", 1.5, 1.0), ("new", 1.0, 1.0)]);
        let d = SweepDelta::between("single", &prev, &cur);
        assert_eq!(d.added, vec!["new".to_string()]);
        assert_eq!(d.removed, vec!["gone".to_string(), "also-gone".to_string()]);
        let rendered = d.render();
        assert!(
            rendered.contains("1 matched, 1 added, 2 removed"),
            "{rendered}"
        );
        assert!(rendered.contains("+ new (not in baseline)"), "{rendered}");
        assert!(rendered.contains("- gone (baseline only)"), "{rendered}");
        let json = d.to_json();
        assert!(json.contains("\"added\":[\"new\"]"), "{json}");
        assert!(
            json.contains("\"removed\":[\"gone\",\"also-gone\"]"),
            "{json}"
        );
        // The embedded fragment must stay parseable by the bench's own
        // json reader (the compare section lands inside BENCH_*.json).
        assert!(parse(&json).is_ok(), "{json}");
    }

    #[test]
    fn controller_delta_gates_on_geometric_mean_of_speedups() {
        let prev = parse(
            r#"{"points":[{"tenants":1000,"incremental_ns_per_rebalance":1000.0},
                          {"tenants":10000,"incremental_ns_per_rebalance":2000.0}]}"#,
        )
        .unwrap();
        let cur = parse(
            r#"{"points":[{"tenants":1000,"incremental_ns_per_rebalance":2000.0},
                          {"tenants":10000,"incremental_ns_per_rebalance":4000.0},
                          {"tenants":100000,"incremental_ns_per_rebalance":1.0}]}"#,
        )
        .unwrap();
        let d = ControllerDelta::between(&prev, &cur);
        // The 100000-tenant point has no baseline and must not inflate the
        // mean; both matched points halved in speed.
        assert_eq!(d.points.len(), 2);
        assert!((d.ratio.unwrap() - 0.5).abs() < 1e-9);
        assert!(d.regressed(0.15));
        assert!(!ControllerDelta::between(&prev, &prev).regressed(0.15));
        assert!(d.render().contains("slower"));
        assert!(parse(&d.to_json()).is_ok());
    }

    #[test]
    fn one_sided_sections_are_reported_not_silently_skipped() {
        // The baseline carries a fleet sweep and a controller probe that the
        // current run lacks; the current run grew a tiers sweep. None of
        // these pairs can produce a SweepDelta — presence drift is the only
        // witness that the compared surface shrank.
        let prev = parse(r#"{"single":{"serial_s":1.0},"fleet":{"serial_s":2.0},"controller":{}}"#)
            .unwrap();
        let cur = parse(r#"{"single":{"serial_s":1.0},"tiers":{"serial_s":0.5}}"#).unwrap();
        let sections = ["single", "tiers", "colocation", "fleet", "controller"];
        let d = SectionDrift::between(&prev, &cur, sections);
        assert_eq!(d.added, vec!["tiers".to_string()]);
        assert_eq!(
            d.missing,
            vec!["fleet".to_string(), "controller".to_string()]
        );
        assert!(!d.is_empty());
        let rendered = d.render();
        assert!(rendered.contains("+ tiers (not in baseline)"), "{rendered}");
        assert!(
            rendered.contains("- fleet (baseline only; unverified this run)"),
            "{rendered}"
        );
        let json = d.to_json();
        assert!(json.contains("\"sweep\":\"sections\""), "{json}");
        assert!(
            json.contains("\"missing\":[\"fleet\",\"controller\"]"),
            "{json}"
        );
        assert!(parse(&json).is_ok(), "{json}");
    }

    #[test]
    fn matched_sections_produce_no_drift() {
        let doc = parse(r#"{"single":{"serial_s":1.0},"colocation":{"serial_s":1.0}}"#).unwrap();
        let d = SectionDrift::between(&doc, &doc, ["single", "colocation", "fleet"]);
        assert!(d.is_empty());
        assert_eq!(d.render(), "");
        assert_eq!(
            d.to_json(),
            "{\"sweep\":\"sections\",\"added\":[],\"missing\":[]}"
        );
    }

    #[test]
    fn identical_matrices_render_without_drift_lines() {
        let prev = snap(1.0, &[("a", 1.0, 1.0)]);
        let cur = snap(0.9, &[("a", 1.1, 1.0)]);
        let d = SweepDelta::between("single", &prev, &cur);
        assert!(d.added.is_empty() && d.removed.is_empty());
        assert!(!d.render().contains("matrix changed"));
        assert!(d.to_json().contains("\"added\":[],\"removed\":[]"));
    }
}
