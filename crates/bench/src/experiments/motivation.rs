//! Motivation figures: hotness churn (Figure 2) and the cooling-period
//! dilemma (Figure 3).

use std::io;
use std::path::Path;

use tiering_mem::PageSize;
use tiering_policies::ema_lag_series;
use tiering_sim::{RetentionConfig, SimConfig};
use tiering_trace::{Sampler, Workload};
use tiering_workloads::{build_workload, CacheLibConfig, CacheLibWorkload, WorkloadId};

use crate::output::{f3, print_header, CsvWriter};
use crate::SEED;

/// Figure 2: fraction of initially hot pages still hot over time, for
/// PageRank and XGBoost. Paper: "most pages are no longer hot after just 5
/// minutes" (PR > 90% decayed, XGBoost > 50%).
pub fn fig2(out: &Path) -> io::Result<()> {
    print_header("fig2", "hot-page retention over time");
    let mut csv = CsvWriter::create(out, "fig2")?;
    csv.row(["workload", "t_ns", "fraction_still_hot"])?;

    let mut cfg = SimConfig::default().with_max_ops(4_000_000);
    // Windows shorter than one kernel iteration/boosting round, so the
    // probe sees the hot set move through the data (the paper's minutes
    // compress to tens of milliseconds here).
    // One sample per window is already strong hotness evidence at the
    // scaled sampling density (period 19 vs. the paper's thousands).
    cfg.retention_probe = Some(RetentionConfig {
        window_ns: 100_000_000,
        hot_min_samples: 1,
    });
    let sweep = tiering_runner::SweepRunner::new(0).run(
        tiering_runner::ScenarioMatrix::new(cfg, SEED)
            .workloads([WorkloadId::PrKron, WorkloadId::Xgboost])
            .ratios([tiering_mem::TierRatio::OneTo4])
            .policies([tiering_policies::PolicyKind::FirstTouch])
            .fixed_seed()
            .build(),
    );
    for result in &sweep.results {
        let report = &result.report;
        let series = report.retention.clone().expect("probe enabled");
        println!("{}:", report.workload);
        for &(t, frac) in &series {
            csv.row([report.workload.clone(), t.to_string(), f3(frac)])?;
        }
        if let Some(&(t_last, f_last)) = series.last() {
            println!(
                "  after {:.1}s (scaled minutes): {:.0}% of the initial hot set remains",
                t_last as f64 / 1e9,
                f_last * 100.0
            );
        }
    }
    let path = csv.finish()?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Figure 3(a): a page accessed 50×/min for 10 minutes; its EMA score
/// (cooling ÷2 every 2 min) lags ~9 minutes behind the access stream.
pub fn fig3a(out: &Path) -> io::Result<()> {
    print_header("fig3a", "EMA lag on a pulsed page");
    let mut csv = CsvWriter::create(out, "fig3a")?;
    csv.row(["minute", "accesses_per_min", "ema_score"])?;
    let series = ema_lag_series(50, 10, 2, 25);
    let mut lag_minute = None;
    for (minute, &score) in series.iter().enumerate() {
        let rate = if minute < 10 { 50 } else { 0 };
        csv.row([minute.to_string(), rate.to_string(), score.to_string()])?;
        if minute >= 10 && score < 10 && lag_minute.is_none() {
            lag_minute = Some(minute);
        }
    }
    println!(
        "page went cold at minute 10; EMA score dropped below 10 at minute {} (paper: ~19)",
        lag_minute.unwrap_or(25)
    );
    let path = csv.finish()?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Figure 3(b): the fraction of pages classified hot/warm/cold under
/// different cooling periods C. Lower C refreshes faster but starves the
/// histogram: hot/warm pages lose their accumulated counts.
pub fn fig3b(out: &Path) -> io::Result<()> {
    print_header("fig3b", "hotness classification vs cooling period");
    let mut csv = CsvWriter::create(out, "fig3b")?;
    csv.row([
        "cooling_period_samples",
        "hot_frac",
        "warm_frac",
        "cold_frac",
    ])?;

    // Paper sweeps C in {Inf, 25M, 10M, 5M, 2M} samples at full scale; the
    // sampled stream here is ~500× smaller.
    let periods: [(&str, u64); 5] = [
        ("Inf", u64::MAX),
        ("50k", 50_000),
        ("20k", 20_000),
        ("10k", 10_000),
        ("4k", 4_000),
    ];
    println!("{:<10} {:>8} {:>8} {:>8}", "C", "hot", "warm", "cold");
    for (label, period) in periods {
        let mut workload =
            CacheLibWorkload::new(CacheLibConfig::cdn().without_churn().with_ops(1_500_000));
        let pages = workload.footprint_pages(PageSize::Base4K) as usize;
        let mut counts = vec![0u32; pages];
        let mut sampler = Sampler::new(19);
        let mut buf = Vec::new();
        let mut samples = 0u64;
        while workload.next_op(0, &mut buf).is_some() {
            for a in &buf {
                if sampler.observe(a).is_some() {
                    samples += 1;
                    counts[(a.addr >> 12) as usize] =
                        counts[(a.addr >> 12) as usize].saturating_add(1);
                    if period != u64::MAX && samples.is_multiple_of(period) {
                        for c in &mut counts {
                            *c /= 2;
                        }
                    }
                }
            }
            buf.clear();
        }
        let touched = counts.iter().filter(|&&c| c > 0).count().max(1);
        let hot = counts.iter().filter(|&&c| c >= 8).count();
        let warm = counts.iter().filter(|&&c| (2..8).contains(&c)).count();
        let cold = touched - hot - warm;
        let (h, w, c) = (
            hot as f64 / touched as f64,
            warm as f64 / touched as f64,
            cold as f64 / touched as f64,
        );
        println!("{label:<10} {h:>8.3} {w:>8.3} {c:>8.3}");
        csv.row([label.to_string(), f3(h), f3(w), f3(c)])?;
    }
    println!("(lower C loses hot/warm mass to cold — requirement 1 vs 2 tension)");
    let path = csv.finish()?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Smoke helper used by integration tests: fig2's probe on a tiny budget.
pub fn fig2_smoke() -> Vec<(u64, f64)> {
    let mut cfg = SimConfig::default().with_max_ops(100_000);
    cfg.retention_probe = Some(RetentionConfig {
        window_ns: 100_000_000,
        hot_min_samples: 2,
    });
    let _ = build_workload(WorkloadId::PrKron, SEED); // exercise the builder
    let report = tiering_sim::run_suite_experiment(
        WorkloadId::Xgboost,
        tiering_policies::PolicyKind::FirstTouch,
        tiering_mem::TierRatio::OneTo4,
        &cfg,
        SEED,
    );
    report.retention.unwrap_or_default()
}
