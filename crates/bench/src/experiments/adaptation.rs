//! Adaptation experiments: Figure 4 and Table 3.
//!
//! The paper's protocol (§2.3.2, §6.3.1): run CacheLib until placement is in
//! steady state, change the popularity distribution so 2/3 of hot data turn
//! cold, and watch the median latency recover. Time is compressed ~1000×
//! relative to the paper (its 1800 s shift point becomes 2 simulated
//! seconds), with all policy time constants scaled consistently.

use std::io;
use std::path::Path;

use tiering_mem::TierRatio;
use tiering_policies::PolicyKind;
use tiering_runner::{PolicySpec, Scenario, SweepRunner, TierSpec, WorkloadSpec};
use tiering_sim::adaptation_time_ns;
use tiering_workloads::{CacheLibConfig, CacheLibWorkload};

use crate::output::{print_header, CsvWriter};
use crate::{adaptation_config, SEED};

/// Simulated shift instant (paper: 1800 s).
pub const SHIFT_NS: u64 = 2_000_000_000;
/// Fraction of hot data turning cold at the shift (paper: 2/3).
pub const SHIFT_FRACTION: f64 = 2.0 / 3.0;

/// One shifted-CacheLib scenario (uniform object sizes, no background
/// churn — isolates the one-time shift).
fn shifted_scenario(kind: PolicyKind, cdn: bool, ratio: TierRatio) -> Scenario {
    let label = format!(
        "{}/{}/{}",
        if cdn { "CDN" } else { "social" },
        ratio,
        kind.label()
    );
    Scenario::new(
        label,
        WorkloadSpec::custom(if cdn { "CDN" } else { "social" }, move |seed| {
            let base = if cdn {
                CacheLibConfig::cdn().with_uniform_size(16 << 10)
            } else {
                CacheLibConfig::social_graph().with_uniform_size(512)
            };
            Box::new(CacheLibWorkload::new(
                base.without_churn()
                    .with_seed(seed)
                    .with_shift(SHIFT_NS, SHIFT_FRACTION),
            ))
        }),
        PolicySpec::Kind(kind),
        TierSpec::Ratio(ratio),
        &adaptation_config(),
        SEED,
    )
}

/// Figure 4: median-latency timeline for AutoNUMA, Memtis, and HybridTier on
/// CacheLib CDN across the distribution change. Paper shape: Memtis takes
/// ~1400 s to re-converge, HybridTier ~250 s, AutoNUMA never reaches their
/// level.
pub fn fig4(out: &Path) -> io::Result<()> {
    print_header(
        "fig4",
        "adapting to a hotness distribution change (CDN, 1:16)",
    );
    let mut csv = CsvWriter::create(out, "fig4")?;
    csv.row(["policy", "t_ns", "p50_ns", "mean_ns"])?;
    let kinds = [
        PolicyKind::AutoNuma,
        PolicyKind::Memtis,
        PolicyKind::HybridTier,
    ];
    let sweep = SweepRunner::new(0).run(
        kinds
            .iter()
            .map(|&k| shifted_scenario(k, true, TierRatio::OneTo16))
            .collect(),
    );
    for result in &sweep.results {
        let report = &result.report;
        for p in &report.timeline {
            csv.row([
                report.policy.clone(),
                p.t_ns.to_string(),
                p.p50_ns.to_string(),
                p.mean_ns.to_string(),
            ])?;
        }
        let adapt = adaptation_time_ns(&report.timeline, SHIFT_NS, 0.01, 3);
        println!(
            "{:<12} steady mean {:>6} ns, adaptation {:>8}",
            report.policy,
            tiering_sim::steady_state_p50(&report.timeline, SHIFT_NS, 0.25).unwrap_or(0),
            match adapt {
                Some(ns) => format!("{:.2} s", ns as f64 / 1e9),
                None => "did not converge".to_string(),
            }
        );
    }
    println!(
        "(shift at {:.1} s; lower adaptation time is better)",
        SHIFT_NS as f64 / 1e9
    );
    let path = csv.finish()?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Table 3: time to adapt (reach within 1% of steady-state median latency)
/// for Memtis vs HybridTier over CDN and social-graph at all three ratios.
/// Paper: HybridTier adapts 1.7–5.9× (avg 3.2×) faster.
pub fn table3(out: &Path) -> io::Result<()> {
    print_header("table3", "time to adapt to a new access distribution");
    let mut csv = CsvWriter::create(out, "table3")?;
    csv.row(["workload", "ratio", "policy", "adapt_s"])?;
    println!(
        "{:<10} {:<6} {:>12} {:>12} {:>10}",
        "workload", "ratio", "Memtis", "HybridTier", "reduction"
    );
    let mut scenarios = Vec::new();
    for cdn in [true, false] {
        for ratio in TierRatio::ALL {
            for kind in [PolicyKind::Memtis, PolicyKind::HybridTier] {
                scenarios.push(shifted_scenario(kind, cdn, ratio));
            }
        }
    }
    let sweep = SweepRunner::new(0).run(scenarios);
    for cdn in [true, false] {
        let wname = if cdn { "CDN" } else { "social" };
        for ratio in TierRatio::ALL {
            let mut times = [f64::NAN; 2];
            for (i, kind) in [PolicyKind::Memtis, PolicyKind::HybridTier]
                .iter()
                .enumerate()
            {
                let label = format!("{wname}/{ratio}/{}", kind.label());
                let report = &sweep.find(&label).expect("scenario present").report;
                let t = adaptation_time_ns(&report.timeline, SHIFT_NS, 0.01, 3)
                    .map(|ns| ns as f64 / 1e9);
                times[i] = t.unwrap_or(f64::INFINITY);
                csv.row([
                    wname.to_string(),
                    ratio.to_string(),
                    report.policy.clone(),
                    t.map_or("inf".into(), |v| format!("{v:.2}")),
                ])?;
            }
            let reduction = times[0] / times[1];
            println!(
                "{:<10} {:<6} {:>11.2}s {:>11.2}s {:>9.1}x",
                wname,
                ratio.to_string(),
                times[0],
                times[1],
                reduction
            );
        }
    }
    let path = csv.finish()?;
    println!("wrote {}", path.display());
    Ok(())
}
