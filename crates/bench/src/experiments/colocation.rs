//! Global memory tiering across co-located tenants (paper §7).
//!
//! The paper sketches — but does not evaluate — a central controller that
//! re-partitions the fast tier across HybridTier instances. This experiment
//! produces the figure that evaluation would have shown: the per-tenant
//! fast-quota trajectory as a mostly idle tenant wakes up next to a hot
//! cache tenant, using the exact scenario the `multi_tenant` example runs
//! (`Scenario::wakeup_demo`), so the printed trajectory and the example's
//! output are the same numbers.

use std::io;
use std::path::Path;

use tiering_runner::{Scenario, SweepRunner};

use crate::output::{f3, print_header, CsvWriter};
use crate::{colocation_config, SEED};

/// §7: the wake-up quota trajectory plus per-tenant service quality.
pub fn sec7(out: &Path) -> io::Result<()> {
    print_header(
        "sec7",
        "global controller quota trajectory across a tenant wake-up",
    );
    let sweep = SweepRunner::new(0).run(vec![Scenario::wakeup_demo(&colocation_config(), SEED)]);
    let result = &sweep.results[0];
    let multi = result
        .multi
        .as_ref()
        .expect("wakeup demo is a co-location scenario");

    let mut csv = CsvWriter::create(out, "sec7")?;
    csv.row([
        "t_ms",
        "cache_demand",
        "batch_demand",
        "cache_quota",
        "batch_quota",
    ])?;
    for e in &multi.rebalances {
        csv.row([
            f3(e.at_ns as f64 / 1e6),
            e.demands[0].to_string(),
            e.demands[1].to_string(),
            e.quotas[0].to_string(),
            e.quotas[1].to_string(),
        ])?;
    }
    print!("{}", multi.summary());
    let path = csv.finish()?;
    println!("wrote {}", path.display());
    Ok(())
}
