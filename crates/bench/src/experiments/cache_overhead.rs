//! Cache-overhead experiments: Figures 5, 13, and 14.
//!
//! These enable full cache simulation: application and tiering-metadata
//! references share one L1+LLC hierarchy and every miss is attributed to its
//! source, the simulator analogue of the paper's per-thread `perf`
//! attribution (§6.3.3).

use std::io;
use std::path::Path;

use tiering_mem::{PageSize, TierRatio};
use tiering_policies::PolicyKind;
use tiering_runner::{PolicySpec, Scenario, SweepRunner, TierSpec, WorkloadSpec};
use tiering_sim::{SimConfig, SimReport};
use tiering_workloads::{CacheLibConfig, CacheLibWorkload};

use crate::output::{f3, print_header, CsvWriter};
use crate::SEED;

/// One cache-attributed CacheLib scenario at the given page granularity.
fn cached_scenario(kind: PolicyKind, page_size: PageSize, ops: u64) -> Scenario {
    let mut cfg = SimConfig::default().with_max_ops(ops).with_cache_sim();
    cfg.page_size = page_size;
    cfg.window_ns = 100_000_000;
    let suffix = match page_size {
        PageSize::Base4K => "4k",
        PageSize::Huge2M => "2m",
    };
    Scenario::new(
        format!("{}/{}", kind.label(), suffix),
        WorkloadSpec::custom("CDN", |seed| {
            Box::new(CacheLibWorkload::new(CacheLibConfig::cdn().with_seed(seed)))
        }),
        PolicySpec::Kind(kind),
        TierSpec::Ratio(TierRatio::OneTo4),
        &cfg,
        SEED,
    )
}

/// Runs a list of cache-attributed scenarios in parallel and returns their
/// reports in input order.
fn run_cached_sweep(scenarios: Vec<Scenario>) -> Vec<SimReport> {
    SweepRunner::new(0)
        .run(scenarios)
        .results
        .into_iter()
        .map(|r| r.report)
        .collect()
}

fn report_fractions(
    csv: &mut CsvWriter,
    label: &str,
    report: &SimReport,
) -> io::Result<(f64, f64)> {
    for p in &report.cache_timeline {
        csv.row([
            label.to_string(),
            p.t_ns.to_string(),
            f3(p.l1_tiering_frac),
            f3(p.llc_tiering_frac),
        ])?;
    }
    let stats = report.cache.expect("cache sim enabled");
    let l1 = stats.l1.tiering_miss_fraction();
    let llc = stats.llc.tiering_miss_fraction();
    println!(
        "{label:<24} L1 misses from tiering: {:>5.1}%   LLC: {:>5.1}%",
        l1 * 100.0,
        llc * 100.0
    );
    Ok((l1, llc))
}

/// Figure 5: cache misses caused by Memtis tiering activity as a fraction of
/// the system total, under 4 KiB and 2 MiB pages. Paper: ~9%/18% (L1/LLC)
/// regular, 13%/18% huge.
pub fn fig5(out: &Path) -> io::Result<()> {
    print_header("fig5", "Memtis tiering cache misses (CacheLib, 1:4)");
    let mut csv = CsvWriter::create(out, "fig5")?;
    csv.row(["config", "t_ns", "l1_tiering_frac", "llc_tiering_frac"])?;
    let reports = run_cached_sweep(vec![
        cached_scenario(PolicyKind::Memtis, PageSize::Base4K, 600_000),
        cached_scenario(PolicyKind::Memtis, PageSize::Huge2M, 600_000),
    ]);
    report_fractions(&mut csv, "memtis-4k", &reports[0])?;
    report_fractions(&mut csv, "memtis-2m", &reports[1])?;
    let path = csv.finish()?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Figure 13: same measurement for HybridTier. Paper: ~5% (4 KiB) and ~4%
/// (huge) of total misses — far below Memtis.
pub fn fig13(out: &Path) -> io::Result<()> {
    print_header("fig13", "HybridTier tiering cache misses (CacheLib, 1:4)");
    let mut csv = CsvWriter::create(out, "fig13")?;
    csv.row(["config", "t_ns", "l1_tiering_frac", "llc_tiering_frac"])?;
    let reports = run_cached_sweep(vec![
        cached_scenario(PolicyKind::HybridTier, PageSize::Base4K, 600_000),
        cached_scenario(PolicyKind::HybridTier, PageSize::Huge2M, 600_000),
    ]);
    report_fractions(&mut csv, "hybridtier-4k", &reports[0])?;
    report_fractions(&mut csv, "hybridtier-2m", &reports[1])?;
    let path = csv.finish()?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Figure 14: step-by-step reduction in tiering cache misses: Memtis →
/// HybridTier with a standard CBF → HybridTier with the blocked CBF.
/// Paper: standard CBF cuts misses 12–36%, blocking another 31–72%.
pub fn fig14(out: &Path) -> io::Result<()> {
    print_header("fig14", "cache-miss reduction breakdown");
    let mut csv = CsvWriter::create(out, "fig14")?;
    csv.row([
        "system",
        "l1_tiering_misses",
        "llc_tiering_misses",
        "l1_vs_memtis",
        "llc_vs_memtis",
    ])?;
    let mut baseline: Option<(u64, u64)> = None;
    println!(
        "{:<22} {:>14} {:>14} {:>10} {:>10}",
        "system", "L1 t-misses", "LLC t-misses", "L1 ratio", "LLC ratio"
    );
    let kinds = [
        PolicyKind::Memtis,
        PolicyKind::HybridTierUnblocked,
        PolicyKind::HybridTier,
    ];
    let reports = run_cached_sweep(
        kinds
            .iter()
            .map(|&k| cached_scenario(k, PageSize::Base4K, 600_000))
            .collect(),
    );
    for report in &reports {
        let stats = report.cache.expect("cache sim enabled");
        let l1 = stats.l1.by(cache_sim::Source::Tiering).misses;
        let llc = stats.llc.by(cache_sim::Source::Tiering).misses;
        let (bl1, bllc) = *baseline.get_or_insert((l1.max(1), llc.max(1)));
        let (r1, r2) = (
            bl1 as f64 / l1.max(1) as f64,
            bllc as f64 / llc.max(1) as f64,
        );
        println!(
            "{:<22} {l1:>14} {llc:>14} {r1:>9.2}x {r2:>9.2}x",
            report.policy
        );
        csv.row([
            report.policy.clone(),
            l1.to_string(),
            llc.to_string(),
            f3(r1),
            f3(r2),
        ])?;
    }
    println!("(ratios are miss reductions relative to Memtis; higher is better)");
    let path = csv.finish()?;
    println!("wrote {}", path.display());
    Ok(())
}
