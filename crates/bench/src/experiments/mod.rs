//! One module per paper result (figure or table).

pub mod adaptation;
pub mod cache_overhead;
pub mod colocation;
pub mod metadata;
pub mod motivation;
pub mod performance;

use std::io;
use std::path::Path;

/// Every experiment id the `repro` binary accepts, with its handler and a
/// one-line description.
pub const ALL: &[(&str, Runner, &str)] = &[
    (
        "fig2",
        motivation::fig2 as Runner,
        "hot-page retention over time (PR, XGBoost)",
    ),
    (
        "fig3a",
        motivation::fig3a as Runner,
        "EMA lag on a pulsed page",
    ),
    (
        "fig3b",
        motivation::fig3b as Runner,
        "hotness classification vs cooling period",
    ),
    (
        "fig4",
        adaptation::fig4 as Runner,
        "median-latency timeline across a distribution shift",
    ),
    (
        "fig5",
        cache_overhead::fig5 as Runner,
        "Memtis tiering cache-miss fraction (4K + huge)",
    ),
    (
        "fig9",
        performance::fig9 as Runner,
        "CacheLib latency/throughput, 6 systems x 3 ratios",
    ),
    (
        "fig10",
        performance::fig10 as Runner,
        "GAP/SPEC/Silo/XGBoost relative performance vs TPP",
    ),
    (
        "fig11",
        performance::fig11 as Runner,
        "HybridTier vs all-fast-tier upper bound",
    ),
    (
        "fig12",
        performance::fig12 as Runner,
        "huge-page performance vs Memtis",
    ),
    (
        "fig13",
        cache_overhead::fig13 as Runner,
        "HybridTier tiering cache-miss fraction",
    ),
    (
        "fig14",
        cache_overhead::fig14 as Runner,
        "cache-miss breakdown: Memtis vs CBF vs blocked CBF",
    ),
    (
        "fig15",
        performance::fig15 as Runner,
        "frequency-only ablation at 1:8",
    ),
    (
        "fig16",
        metadata::fig16 as Runner,
        "per-page access-count distributions, 12 workloads",
    ),
    (
        "fig17",
        performance::fig17 as Runner,
        "momentum-threshold sensitivity",
    ),
    (
        "sec7",
        colocation::sec7 as Runner,
        "global-controller quota trajectory across a tenant wake-up (§7)",
    ),
    (
        "table3",
        adaptation::table3 as Runner,
        "time to adapt to a new distribution",
    ),
    (
        "table4",
        metadata::table4 as Runner,
        "metadata size relative to total memory",
    ),
    (
        "table5",
        metadata::table5 as Runner,
        "CBF migration-decision accuracy vs size",
    ),
];

/// Signature of one experiment entry point.
pub type Runner = fn(&Path) -> io::Result<()>;

/// Looks up an experiment by id.
pub fn find(id: &str) -> Option<Runner> {
    ALL.iter()
        .find(|(name, ..)| *name == id)
        .map(|&(_, f, _)| f)
}
