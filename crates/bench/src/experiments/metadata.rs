//! Metadata experiments: Figure 16 and Tables 4/5.

use std::io;
use std::path::Path;

use hybridtier_cbf::{
    AccessCounter, BlockedCbf, CbfParams, CounterWidth, DecisionOutcome, GroundTruthCounter,
};
use tiering_mem::{PageSize, TierConfig, TierRatio};
use tiering_policies::{build_policy, PolicyKind};
use tiering_sim::{SimConfig, COUNT_BUCKET_LABELS};
use tiering_trace::{Sampler, Workload};
use tiering_workloads::{build_workload, WorkloadId};

use crate::output::{f3, print_header, CsvWriter};
use crate::SEED;

/// Figure 16: cumulative per-page sampled-access-count distributions for all
/// 12 workloads. Paper: social-graph has the largest ≥15 fraction; GAP
/// Kronecker workloads have ~94% of pages at count 0.
pub fn fig16(out: &Path) -> io::Result<()> {
    print_header("fig16", "access hotness distributions (12 workloads)");
    let mut csv = CsvWriter::create(out, "fig16")?;
    let mut header = vec!["workload".to_string()];
    header.extend(COUNT_BUCKET_LABELS.iter().map(|b| format!("cum_{b}")));
    csv.row(header)?;
    println!(
        "{:<9} {}",
        "workload",
        COUNT_BUCKET_LABELS.map(|b| format!("{b:>8}")).join(" ")
    );
    let mut cfg = SimConfig::default().with_max_ops(1_500_000);
    cfg.count_probe = true;
    // The paper's counts come from real PEBS rates, where most pages of
    // a hundreds-of-GB footprint are never sampled (GAP-Kronecker: 94%
    // at count 0). Use a proportionally sparse probe period so the
    // distribution reflects relative hotness rather than run length.
    cfg.sample_period = 499;
    let sweep = tiering_runner::SweepRunner::new(0).run(
        tiering_runner::ScenarioMatrix::new(cfg, SEED)
            .workloads(WorkloadId::ALL)
            .ratios([TierRatio::OneTo4])
            .policies([PolicyKind::FirstTouch])
            .fixed_seed()
            .build(),
    );
    for (id, result) in WorkloadId::ALL.iter().zip(&sweep.results) {
        let id = *id;
        let dist = result
            .report
            .count_distribution
            .clone()
            .expect("probe enabled");
        let cum = dist.cumulative_fractions();
        println!(
            "{:<9} {}",
            id.label(),
            cum.map(|c| format!("{c:>8.3}")).join(" ")
        );
        let mut row = vec![id.label().to_string()];
        row.extend(cum.iter().map(|c| f3(*c)));
        csv.row(row)?;
    }
    let path = csv.finish()?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Table 4: tiering metadata size relative to total memory capacity.
/// Paper: Memtis constant at 0.39%; HybridTier 0.050%/0.097%/0.192% at
/// 1:16/1:8/1:4 (2.0–7.8× smaller).
pub fn table4(out: &Path) -> io::Result<()> {
    print_header("table4", "metadata size relative to total memory");
    let mut csv = CsvWriter::create(out, "table4")?;
    csv.row(["ratio", "memtis_frac", "hybridtier_frac", "reduction"])?;
    // Use a CDN-scale footprint; the fractions are size-independent for
    // Memtis and scale with the fast-tier share for HybridTier.
    // A footprint large enough that the small-scale CBF sizing floors do
    // not bind (the paper's server has millions of fast-tier pages).
    let pages = 1_000_000u64;
    println!(
        "{:<6} {:>10} {:>12} {:>10}",
        "ratio", "Memtis", "HybridTier", "reduction"
    );
    for ratio in TierRatio::ALL {
        let tier_cfg = TierConfig::for_footprint(pages, ratio, PageSize::Base4K);
        let total_bytes = tier_cfg.total_bytes() as f64;
        let memtis = build_policy(PolicyKind::Memtis, &tier_cfg).metadata_bytes() as f64;
        let ht = build_policy(PolicyKind::HybridTier, &tier_cfg).metadata_bytes() as f64;
        let (mf, hf) = (memtis / total_bytes, ht / total_bytes);
        println!(
            "{:<6} {:>9.3}% {:>11.3}% {:>9.1}x",
            ratio.to_string(),
            mf * 100.0,
            hf * 100.0,
            mf / hf
        );
        csv.row([
            ratio.to_string(),
            format!("{mf:.5}"),
            format!("{hf:.5}"),
            f3(mf / hf),
        ])?;
    }
    let path = csv.finish()?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Table 5: accuracy of CBF-based migration decisions vs. an exact hash
/// table as CBF size shrinks. Paper (at 256–8 MB full scale):
/// 99.72% → 96.92%. Sizes here are scaled 512× with the footprints.
pub fn table5(out: &Path) -> io::Result<()> {
    print_header("table5", "CBF migration-decision accuracy vs size");
    let mut csv = CsvWriter::create(out, "table5")?;
    csv.row(["cbf_kib", "accuracy"])?;
    // Paper sizes {256,128,64,32,8} MB ÷ 512 → KiB.
    let sizes_kib = [512usize, 256, 128, 64, 16];
    let threshold = 4u32;

    // One pass of the CDN sample stream drives all filters plus the exact
    // ground truth, mirroring the paper's methodology ("we modify HybridTier
    // to maintain a hash table in addition to the CBF").
    let mut workload = build_workload(WorkloadId::CdnCacheLib, SEED);
    let mut filters: Vec<(usize, BlockedCbf, DecisionOutcome)> = sizes_kib
        .iter()
        .map(|&kib| {
            (
                kib,
                BlockedCbf::new(CbfParams::for_budget_bytes(kib << 10, 4, CounterWidth::W4)),
                DecisionOutcome::default(),
            )
        })
        .collect();
    let mut truth = GroundTruthCounter::new(CounterWidth::W4);
    let mut sampler = Sampler::new(19);
    let mut buf = Vec::new();
    let mut ops = 0u64;
    let mut samples = 0u64;
    while ops < 1_200_000 {
        buf.clear();
        if workload.next_op(0, &mut buf).is_none() {
            break;
        }
        ops += 1;
        for a in &buf {
            if sampler.observe(a).is_none() {
                continue;
            }
            samples += 1;
            let page = a.addr >> 12;
            let t = truth.increment(page);
            for (_, cbf, outcome) in &mut filters {
                let e = cbf.increment(page);
                outcome.record(e >= threshold, t >= threshold);
            }
            if samples.is_multiple_of(50_000) {
                truth.cool();
                for (_, cbf, _) in &mut filters {
                    cbf.cool();
                }
            }
        }
    }
    println!("{:<10} {:>10}", "CBF size", "accuracy");
    for (kib, _, outcome) in &filters {
        println!("{:>7}KiB {:>9.2}%", kib, outcome.accuracy() * 100.0);
        csv.row([kib.to_string(), format!("{:.4}", outcome.accuracy())])?;
    }
    println!("({samples} sampled decisions compared)");
    let path = csv.finish()?;
    println!("wrote {}", path.display());
    Ok(())
}
