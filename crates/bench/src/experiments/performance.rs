//! End-to-end performance sweeps: Figures 9, 10, 11, 12, 15, and 17.
//!
//! All sweeps run through the parallel scenario runner: every
//! (workload, ratio, policy) cell becomes a [`Scenario`], the whole matrix
//! executes across the machine's cores, and the tables print from the
//! merged sweep report in the paper's row order. Seeds follow the legacy
//! protocol (one fixed seed for the whole figure) so regenerated numbers
//! stay comparable across PRs.

use std::io;
use std::path::Path;

use tiering_mem::TierRatio;
use tiering_policies::{HybridTierConfig, HybridTierPolicy, PolicyKind};
use tiering_runner::{PolicySpec, Scenario, ScenarioMatrix, SweepRunner, TierSpec, WorkloadSpec};
use tiering_workloads::WorkloadId;

use crate::output::{f3, print_header, CsvWriter};
use crate::{sweep_config, SEED};

/// Figure 9: CacheLib CDN + social-graph median latency and throughput for
/// all six systems at 1:16, 1:8, 1:4. Paper: HybridTier best or tied in all
/// but two cells; ~2× less fast-tier memory for equal performance.
pub fn fig9(out: &Path) -> io::Result<()> {
    print_header("fig9", "CacheLib performance, 6 systems x 3 ratios");
    let sweep = SweepRunner::new(0).run(
        ScenarioMatrix::new(sweep_config(), SEED)
            .workloads([WorkloadId::CdnCacheLib, WorkloadId::SocialCacheLib])
            .ratios(TierRatio::ALL)
            .policies(PolicyKind::COMPARED)
            .fixed_seed()
            .build(),
    );
    let mut csv = CsvWriter::create(out, "fig9")?;
    csv.row(["workload", "ratio", "policy", "p50_ns", "mops", "fast_hit"])?;
    for id in [WorkloadId::CdnCacheLib, WorkloadId::SocialCacheLib] {
        for ratio in TierRatio::ALL {
            println!("\n{} @ {ratio}:", id.label());
            println!(
                "{:<12} {:>9} {:>9} {:>9}",
                "policy", "p50(ns)", "Mop/s", "fast-hit"
            );
            for kind in PolicyKind::COMPARED {
                let r = &sweep.cell(id, ratio, kind).expect("cell in sweep").report;
                println!(
                    "{:<12} {:>9} {:>9.3} {:>8.1}%",
                    r.policy,
                    r.latency.p50_ns,
                    r.throughput_mops(),
                    r.fast_hit_frac * 100.0
                );
                csv.row([
                    id.label().to_string(),
                    ratio.to_string(),
                    r.policy.clone(),
                    r.latency.p50_ns.to_string(),
                    f3(r.throughput_mops()),
                    f3(r.fast_hit_frac),
                ])?;
            }
        }
    }
    let path = csv.finish()?;
    println!(
        "wrote {} ({} scenarios in {:.1}s on {} threads)",
        path.display(),
        sweep.results.len(),
        sweep.wall.as_secs_f64(),
        sweep.threads
    );
    Ok(())
}

/// The ten batch/throughput workloads of Figure 10.
const FIG10_WORKLOADS: [WorkloadId; 10] = [
    WorkloadId::BfsKron,
    WorkloadId::BfsUniform,
    WorkloadId::CcKron,
    WorkloadId::CcUniform,
    WorkloadId::PrKron,
    WorkloadId::PrUniform,
    WorkloadId::Bwaves,
    WorkloadId::Roms,
    WorkloadId::Silo,
    WorkloadId::Xgboost,
];

/// Figure 10: relative performance (runtime_TPP / runtime_X) for the GAP,
/// SPEC, Silo, and XGBoost workloads — the harness's biggest sweep
/// (180 simulations). Paper geomeans: HybridTier beats TPP 32%, AutoNUMA
/// 11%, Memtis 29%, ARC 50%, TwoQ 40%.
pub fn fig10(out: &Path) -> io::Result<()> {
    print_header("fig10", "relative performance normalized to TPP");
    let sweep = SweepRunner::new(0).run(
        ScenarioMatrix::new(sweep_config(), SEED)
            .workloads(FIG10_WORKLOADS)
            .ratios(TierRatio::ALL)
            .policies(PolicyKind::COMPARED)
            .fixed_seed()
            .build(),
    );
    let mut csv = CsvWriter::create(out, "fig10")?;
    csv.row([
        "workload",
        "ratio",
        "policy",
        "runtime_s",
        "relative_to_tpp",
    ])?;
    // Geometric-mean accumulators per policy.
    let mut geo: std::collections::HashMap<&'static str, (f64, u32)> = Default::default();
    for id in FIG10_WORKLOADS {
        for ratio in TierRatio::ALL {
            let tpp = &sweep
                .cell(id, ratio, PolicyKind::Tpp)
                .expect("TPP cell")
                .report;
            println!("\n{} @ {ratio}:", id.label());
            for kind in PolicyKind::COMPARED {
                let r = &sweep.cell(id, ratio, kind).expect("cell in sweep").report;
                let rel = r.relative_performance(tpp);
                println!(
                    "  {:<12} runtime {:>8.3}s  relative {:>6.3}",
                    r.policy,
                    r.runtime_s(),
                    rel
                );
                csv.row([
                    id.label().to_string(),
                    ratio.to_string(),
                    r.policy.clone(),
                    format!("{:.4}", r.runtime_s()),
                    f3(rel),
                ])?;
                let e = geo.entry(kind.label()).or_insert((0.0, 0));
                e.0 += rel.max(1e-9).ln();
                e.1 += 1;
            }
        }
    }
    println!("\ngeomean relative performance (vs TPP):");
    for kind in PolicyKind::COMPARED {
        if let Some((lnsum, n)) = geo.get(kind.label()) {
            println!("  {:<12} {:.3}", kind.label(), (lnsum / *n as f64).exp());
        }
    }
    let path = csv.finish()?;
    println!(
        "wrote {} ({} scenarios in {:.1}s on {} threads)",
        path.display(),
        sweep.results.len(),
        sweep.wall.as_secs_f64(),
        sweep.threads
    );
    Ok(())
}

/// All 12 workloads (request-driven ones measured by throughput).
const ALL_WORKLOADS: [WorkloadId; 12] = WorkloadId::ALL;

/// Figure 11: HybridTier normalized against the all-fast-tier upper bound.
/// Paper: 14%, 9%, 6% slower at 1:16, 1:8, 1:4 on average.
pub fn fig11(out: &Path) -> io::Result<()> {
    print_header("fig11", "HybridTier vs all-fast-tier upper bound");
    // One AllFast bound plus the three ratio runs per workload.
    let mut scenarios = Vec::new();
    for id in ALL_WORKLOADS {
        scenarios.push(Scenario::suite(
            id,
            PolicyKind::AllFast,
            TierRatio::OneTo4,
            &sweep_config(),
            SEED,
        ));
        for ratio in TierRatio::ALL {
            scenarios.push(Scenario::suite(
                id,
                PolicyKind::HybridTier,
                ratio,
                &sweep_config(),
                SEED,
            ));
        }
    }
    let sweep = SweepRunner::new(0).run(scenarios);

    let mut csv = CsvWriter::create(out, "fig11")?;
    csv.row(["workload", "ratio", "relative_to_allfast"])?;
    let mut per_ratio: std::collections::HashMap<String, (f64, u32)> = Default::default();
    for id in ALL_WORKLOADS {
        let upper = &sweep
            .cell(id, TierRatio::OneTo4, PolicyKind::AllFast)
            .expect("upper bound")
            .report;
        print!("{:<9}", id.label());
        for ratio in TierRatio::ALL {
            let r = &sweep
                .cell(id, ratio, PolicyKind::HybridTier)
                .expect("cell")
                .report;
            let rel = r.relative_performance(upper).min(1.0);
            print!("  {ratio}: {rel:.3}");
            csv.row([id.label().to_string(), ratio.to_string(), f3(rel)])?;
            let e = per_ratio.entry(ratio.to_string()).or_insert((0.0, 0));
            e.0 += rel.max(1e-9).ln();
            e.1 += 1;
        }
        println!();
    }
    println!("\ngeomean fraction of all-fast performance:");
    for ratio in TierRatio::ALL {
        if let Some((lnsum, n)) = per_ratio.get(&ratio.to_string()) {
            println!("  {}: {:.3}", ratio, (lnsum / *n as f64).exp());
        }
    }
    let path = csv.finish()?;
    println!(
        "wrote {} ({} scenarios in {:.1}s on {} threads)",
        path.display(),
        sweep.results.len(),
        sweep.wall.as_secs_f64(),
        sweep.threads
    );
    Ok(())
}

/// Workloads with footprints large enough to hold >50 huge pages; the
/// scaled-down GAP graphs span too few 2 MiB pages to tier meaningfully
/// (documented in EXPERIMENTS.md).
const FIG12_WORKLOADS: [WorkloadId; 6] = [
    WorkloadId::CdnCacheLib,
    WorkloadId::SocialCacheLib,
    WorkloadId::Bwaves,
    WorkloadId::Roms,
    WorkloadId::Silo,
    WorkloadId::Xgboost,
];

/// Figure 12: huge-page (2 MiB) performance of HybridTier relative to
/// Memtis. Paper: on par at 1:16, +9%/+11% at 1:8/1:4.
pub fn fig12(out: &Path) -> io::Result<()> {
    print_header("fig12", "huge-page performance vs Memtis");
    let sweep = SweepRunner::new(0).run(
        ScenarioMatrix::new(sweep_config().with_huge_pages(), SEED)
            .workloads(FIG12_WORKLOADS)
            .ratios(TierRatio::ALL)
            .policies([PolicyKind::Memtis, PolicyKind::HybridTier])
            .fixed_seed()
            .build(),
    );
    let mut csv = CsvWriter::create(out, "fig12")?;
    csv.row(["workload", "ratio", "hybridtier_vs_memtis"])?;
    for id in FIG12_WORKLOADS {
        print!("{:<9}", id.label());
        for ratio in TierRatio::ALL {
            let memtis = &sweep
                .cell(id, ratio, PolicyKind::Memtis)
                .expect("cell")
                .report;
            let ht = &sweep
                .cell(id, ratio, PolicyKind::HybridTier)
                .expect("cell")
                .report;
            let rel = ht.relative_performance(memtis);
            print!("  {ratio}: {rel:.3}");
            csv.row([id.label().to_string(), ratio.to_string(), f3(rel)])?;
        }
        println!();
    }
    println!("(>1 means HybridTier faster than Memtis under 2 MiB pages)");
    let path = csv.finish()?;
    println!(
        "wrote {} ({} scenarios in {:.1}s on {} threads)",
        path.display(),
        sweep.results.len(),
        sweep.wall.as_secs_f64(),
        sweep.threads
    );
    Ok(())
}

/// Figure 15: contribution of the momentum tracker — HybridTier vs the
/// frequency-only ablation at 1:8. Paper: +8.5% on CacheLib and XGBoost,
/// parity on the small-hot-set GAP kernels.
pub fn fig15(out: &Path) -> io::Result<()> {
    print_header("fig15", "frequency-only ablation (1:8)");
    let sweep = SweepRunner::new(0).run(
        ScenarioMatrix::new(sweep_config(), SEED)
            .workloads(ALL_WORKLOADS)
            .ratios([TierRatio::OneTo8])
            .policies([PolicyKind::HybridTier, PolicyKind::HybridTierFreqOnly])
            .fixed_seed()
            .build(),
    );
    let mut csv = CsvWriter::create(out, "fig15")?;
    csv.row(["workload", "freq_only_relative_to_full"])?;
    for id in ALL_WORKLOADS {
        let full = &sweep
            .cell(id, TierRatio::OneTo8, PolicyKind::HybridTier)
            .expect("cell")
            .report;
        let freq_only = &sweep
            .cell(id, TierRatio::OneTo8, PolicyKind::HybridTierFreqOnly)
            .expect("cell")
            .report;
        let rel = freq_only.relative_performance(full);
        println!("{:<9} freq-only/full = {rel:.3}", id.label());
        csv.row([id.label().to_string(), f3(rel)])?;
    }
    println!("(<1 means the momentum tracker helps)");
    let path = csv.finish()?;
    println!(
        "wrote {} ({} scenarios in {:.1}s on {} threads)",
        path.display(),
        sweep.results.len(),
        sweep.wall.as_secs_f64(),
        sweep.threads
    );
    Ok(())
}

/// Figure 17: momentum-threshold sensitivity on the CacheLib workloads —
/// custom-policy scenarios through the same parallel driver.
/// Paper: thresholds below 3 mispromote; beyond 3 little change.
pub fn fig17(out: &Path) -> io::Result<()> {
    print_header("fig17", "momentum threshold sensitivity (1:16)");
    let mut scenarios = Vec::new();
    for id in [WorkloadId::CdnCacheLib, WorkloadId::SocialCacheLib] {
        for threshold in 1..=6u32 {
            scenarios.push(Scenario::new(
                format!("{}/thr{}", id.label(), threshold),
                WorkloadSpec::Suite(id),
                PolicySpec::custom(format!("HybridTier(m={threshold})"), move |tier_cfg| {
                    let cfg = HybridTierConfig::scaled(tier_cfg).with_momentum_threshold(threshold);
                    Box::new(HybridTierPolicy::new(cfg, tier_cfg))
                }),
                TierSpec::Ratio(TierRatio::OneTo16),
                &sweep_config(),
                SEED,
            ));
        }
    }
    let sweep = SweepRunner::new(0).run(scenarios);

    let mut csv = CsvWriter::create(out, "fig17")?;
    csv.row(["workload", "threshold", "p50_ns", "mops"])?;
    for id in [WorkloadId::CdnCacheLib, WorkloadId::SocialCacheLib] {
        println!("{}:", id.label());
        for threshold in 1..=6u32 {
            let r = &sweep
                .find(&format!("{}/thr{}", id.label(), threshold))
                .expect("scenario present")
                .report;
            println!(
                "  threshold {threshold}: p50 {:>6} ns, {:.3} Mop/s",
                r.latency.p50_ns,
                r.throughput_mops()
            );
            csv.row([
                id.label().to_string(),
                threshold.to_string(),
                r.latency.p50_ns.to_string(),
                f3(r.throughput_mops()),
            ])?;
        }
    }
    let path = csv.finish()?;
    println!(
        "wrote {} ({} scenarios in {:.1}s on {} threads)",
        path.display(),
        sweep.results.len(),
        sweep.wall.as_secs_f64(),
        sweep.threads
    );
    Ok(())
}
