//! End-to-end multi-process sweep: `ProcessWorker`s spawn the real `bench`
//! binary (`--shard i/N --json …`), the coordinator fans shards out with a
//! fault injected, and the collected shard texts reassemble through
//! [`merge_texts`] into a document equal (up to host timing) to an
//! unsharded `bench` run — the full distributed pipeline, subprocesses
//! included.

use std::path::{Path, PathBuf};
use std::process::Command;

use fleet_exec::{FaultKind, FaultPlan, FleetConfig, FleetCoordinator, ProcessWorker};
use hybridtier_bench::json::{parse, Json};
use hybridtier_bench::merge::{equal_ignoring, merge_texts, validate_shard_text, HOST_TIMING_KEYS};

const OPS: &str = "1500";

/// A scratch directory unique to this test run.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fleet_process_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir scratch");
    dir
}

fn bench_worker(dir: &Path) -> ProcessWorker {
    ProcessWorker::new(env!("CARGO_BIN_EXE_bench"))
        .args([
            "--shard",
            "{index}/{total}",
            "--ops",
            OPS,
            "--serial-only",
            "--no-colocation",
            "--no-fleet",
            "--json",
            "{out}",
        ])
        .out_dir(dir)
}

/// One unsharded `bench` run with the same protocol flags. Sharded runs
/// skip the controller scaling probe (it is not shardable), so the
/// unsharded reference must skip it too for the documents to agree.
fn unsharded_doc(dir: &Path) -> Json {
    let out = dir.join("unsharded.json");
    let status = Command::new(env!("CARGO_BIN_EXE_bench"))
        .args([
            "--ops",
            OPS,
            "--serial-only",
            "--no-colocation",
            "--no-fleet",
            "--no-controller",
        ])
        .arg("--json")
        .arg(&out)
        .stdout(std::process::Stdio::null())
        .status()
        .expect("spawn unsharded bench");
    assert!(status.success(), "unsharded bench run failed");
    let text = std::fs::read_to_string(&out).expect("read unsharded json");
    parse(&text).expect("unsharded json parses")
}

#[test]
fn subprocess_shards_with_a_fault_merge_equal_to_unsharded() {
    let dir = scratch("merge");
    // Three subprocess workers, three shards; worker 1's first shard
    // output is truncated mid-file, so the text validator must reject it
    // and the retry (on any worker) must recover.
    let run = FleetCoordinator::<String>::new(FleetConfig::default())
        .with_worker("proc0", bench_worker(&dir))
        .with_worker("proc1", bench_worker(&dir))
        .with_worker("proc2", bench_worker(&dir))
        .with_faults(FaultPlan::new(vec![FaultKind::Truncate.on(1)]))
        .with_validator(|spec, text: &String| validate_shard_text(spec, text))
        .run(3)
        .expect("truncation is recoverable");
    assert!(run.exec.rejected >= 1, "the truncated shard was rejected");
    assert!(run.exec.retries >= 1, "and retried");
    assert_eq!(run.artifacts.len(), 3);

    let merged = merge_texts(&run.artifacts).expect("shard texts merge");
    let unsharded = unsharded_doc(&dir);
    assert!(
        equal_ignoring(&merged, &unsharded, HOST_TIMING_KEYS),
        "merged subprocess shards != unsharded run:\n{}\n{}",
        merged.render(),
        unsharded.render()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exec_workers_flag_writes_a_fleet_exec_section() {
    let dir = scratch("flag");
    let out = dir.join("exec.json");
    let status = Command::new(env!("CARGO_BIN_EXE_bench"))
        .args([
            "--ops",
            "1000",
            "--sim-ms",
            "2",
            "--exec-workers",
            "2",
            "--no-controller",
        ])
        .arg("--json")
        .arg(&out)
        .stdout(std::process::Stdio::null())
        .status()
        .expect("spawn bench --exec-workers");
    assert!(status.success(), "bench --exec-workers failed");
    let doc = parse(&std::fs::read_to_string(&out).expect("read json")).expect("json parses");

    let exec = doc.get("fleet_exec").expect("fleet_exec section");
    assert_eq!(exec.get("workers").and_then(Json::as_i128), Some(2));
    for section in ["single", "colocation", "fleet"] {
        let sweep_exec = exec
            .get(section)
            .unwrap_or_else(|| panic!("fleet_exec.{section} present"));
        assert_eq!(
            sweep_exec
                .get("workers")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(2)
        );
        assert!(
            sweep_exec
                .get("events")
                .and_then(Json::as_array)
                .is_some_and(|e| !e.is_empty()),
            "event log sealed into the document"
        );
        // The executor drove the parallel pass, and it agreed with serial.
        assert_eq!(
            doc.get(section)
                .and_then(|s| s.get("parallel_identical_to_serial")),
            Some(&Json::Bool(true))
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exec_workers_flag_conflicts_are_rejected() {
    for conflict in [
        vec!["--exec-workers", "2", "--shard", "0/2"],
        vec!["--exec-workers", "2", "--serial-only"],
        vec!["--exec-workers", "0"],
    ] {
        let output = Command::new(env!("CARGO_BIN_EXE_bench"))
            .args(&conflict)
            .output()
            .expect("spawn bench");
        assert!(
            !output.status.success(),
            "bench {conflict:?} must be rejected"
        );
    }
}
