//! Regression tests for `bench --merge` on minimal and partially-written
//! shard documents — the shapes the fleet executor's fault injectors
//! actually produce (truncated files, corrupted prefixes, hosts that only
//! ran some passes) plus hand-degraded documents. The merge must reject
//! these with a typed [`MergeJsonError`] or merge them losslessly; it must
//! never panic, and a host-specific `"compare"` section must never abort
//! an otherwise valid union.

use hybridtier_bench::json::{parse, Json};
use hybridtier_bench::merge::{merge_docs, merge_texts, validate_shard_text, MergeJsonError};
use tiering_runner::ShardSpec;

/// A well-formed 2-way shard document over a 3-scenario matrix: shard 0
/// owns indices {0, 2}, shard 1 owns {1}.
fn shard_text(index: usize) -> String {
    let entries = match index {
        0 => {
            r#"[{"label":"a","seed":1,"fingerprint":"fa"},{"label":"c","seed":3,"fingerprint":"fc"}]"#
        }
        _ => r#"[{"label":"b","seed":2,"fingerprint":"fb"}]"#,
    };
    format!(
        "{{\"bench\":\"policy_comparison_sweep\",\"ops_per_scenario\":5,\
         \"shard\":{{\"index\":{index},\"total\":2}},\
         \"single\":{{\"scenarios\":{n},\"shard_index\":{index},\"shard_total\":2,\
         \"matrix_scenarios\":3,\"serial_s\":0.5,\
         \"sweep\":{{\"threads\":1,\"wall_s\":0.5,\"scenarios\":{entries}}}}}}}",
        n = if index == 0 { 2 } else { 1 },
    )
}

fn shard_doc(index: usize) -> Json {
    parse(&shard_text(index)).expect("fixture parses")
}

#[test]
fn host_specific_compare_sections_are_dropped_not_fatal() {
    // Shard 0 carries a compare section (host-timing deltas against some
    // baseline), shard 1 carries a *different* one — and a third variant
    // carries none at all. None of these may abort the merge: compare
    // data is per-host and is dropped, like wall-clock is recomputed.
    let mut with_compare = shard_doc(0);
    with_compare.set(
        "compare",
        parse(r#"[{"sweep":"single","throughput_ratio":1.25}]"#).unwrap(),
    );
    let mut other_compare = shard_doc(1);
    other_compare.set(
        "compare",
        parse(r#"[{"sweep":"single","throughput_ratio":0.75}]"#).unwrap(),
    );

    for second in [other_compare, shard_doc(1)] {
        let merged =
            merge_docs(&[with_compare.clone(), second]).expect("compare must not abort a merge");
        assert!(merged.get("compare").is_none(), "compare must be dropped");
        let labels: Vec<&str> = merged
            .get("single")
            .and_then(|s| s.get("sweep"))
            .and_then(|s| s.get("scenarios"))
            .and_then(Json::as_array)
            .expect("merged sweep")
            .iter()
            .map(|e| e.str("label").unwrap())
            .collect();
        assert_eq!(labels, ["a", "b", "c"], "canonical order restored");
    }
}

#[test]
fn minimal_documents_without_sections_still_merge() {
    let docs = [
        parse(r#"{"bench":"x","shard":{"index":0,"total":2}}"#).unwrap(),
        parse(r#"{"bench":"x","shard":{"index":1,"total":2}}"#).unwrap(),
    ];
    let merged = merge_docs(&docs).expect("sectionless shards merge");
    assert_eq!(merged.str("bench"), Some("x"));
    assert_eq!(merged.get("merged_from").and_then(Json::as_i128), Some(2));
}

#[test]
fn partial_host_timing_is_omitted_not_invented() {
    // Shard 1 never wrote serial_s (e.g. it ran --parallel-only): the
    // merged section must omit the aggregate rather than fabricate one
    // from half the hosts — and must not panic on the absent key.
    let full = shard_doc(0);
    let mut partial = shard_doc(1);
    {
        let section = parse(
            r#"{"scenarios":1,"shard_index":1,"shard_total":2,"matrix_scenarios":3,
             "sweep":{"threads":1,"wall_s":0.5,
             "scenarios":[{"label":"b","seed":2,"fingerprint":"fb"}]}}"#,
        )
        .unwrap();
        partial.set("single", section);
    }
    let merged = merge_docs(&[full, partial]).expect("partial host timing merges");
    let single = merged.get("single").expect("single section");
    assert!(single.num("serial_s").is_none(), "no invented aggregate");
    assert!(single.num("speedup").is_none());
    // The deterministic payload is intact regardless.
    assert_eq!(single.num("scenarios"), Some(3.0));
}

#[test]
fn non_integer_shard_identities_are_rejected() {
    // A float-coerced -1 used to saturate into slot 0 and mis-bin the
    // shard (reported as a confusing "shard 1 missing"); 1.5 truncated
    // to 1. Both must be rejected as having no shard identity.
    for identity in ["-1", "1.5"] {
        let doc = parse(&format!(
            r#"{{"shard":{{"index":{identity},"total":2}},"bench":"x"}}"#
        ))
        .unwrap();
        assert_eq!(
            merge_docs(&[doc]),
            Err(MergeJsonError::NotSharded { doc: 0 }),
            "identity {identity} must be rejected"
        );
    }
}

#[test]
fn truncated_or_corrupted_texts_are_typed_errors() {
    let good = shard_text(0);
    // The fleet executor's Truncate fault: the file cut mid-write.
    let truncated = good[..good.len() / 2].to_string();
    let err = merge_texts(&[truncated, shard_text(1)]).unwrap_err();
    assert!(
        matches!(err, MergeJsonError::Unparseable { doc: 0, .. }),
        "got {err:?}"
    );
    // The Corrupt fault: garbage prepended to otherwise valid json.
    let corrupted = format!("!corrupt!{}", shard_text(1));
    let err = merge_texts(&[shard_text(0), corrupted]).unwrap_err();
    assert!(
        matches!(err, MergeJsonError::Unparseable { doc: 1, .. }),
        "got {err:?}"
    );
    // And the round trip: clean texts merge to the full matrix.
    let merged = merge_texts(&[shard_text(0), shard_text(1)]).expect("clean texts merge");
    assert_eq!(
        merged.get("single").and_then(|s| s.num("scenarios")),
        Some(3.0)
    );
}

#[test]
fn validate_shard_text_rejects_what_the_faults_produce() {
    let spec = ShardSpec::new(0, 2).unwrap();
    let good = shard_text(0);
    assert_eq!(validate_shard_text(spec, &good), Ok(()));

    // Truncation → unparseable.
    let err = validate_shard_text(spec, &good[..good.len() - 20]).unwrap_err();
    assert!(err.contains("unparseable"), "{err}");

    // A different shard's output (a worker answering for the wrong
    // shard) → identity mismatch.
    let err = validate_shard_text(spec, &shard_text(1)).unwrap_err();
    assert!(err.contains("does not match"), "{err}");

    // A scenario list that lost entries (partial write that still
    // parses) → slice-count mismatch.
    let halved = good.replace(r#",{"label":"c","seed":3,"fingerprint":"fc"}"#, "");
    let err = validate_shard_text(spec, &halved).unwrap_err();
    assert!(err.contains("slice demands"), "{err}");

    // No shard identity at all.
    let err = validate_shard_text(spec, r#"{"bench":"x"}"#).unwrap_err();
    assert!(err.contains("no shard identity"), "{err}");
}
