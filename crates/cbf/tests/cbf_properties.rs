//! Property-based tests for the CBF invariants the tiering policies rely on.

use hybridtier_cbf::{
    AccessCounter, BlockedCbf, CbfParams, CounterArray, CounterWidth, GroundTruthCounter,
    StandardCbf,
};
use proptest::prelude::*;

fn any_width() -> impl Strategy<Value = CounterWidth> {
    prop_oneof![
        Just(CounterWidth::W4),
        Just(CounterWidth::W8),
        Just(CounterWidth::W16),
    ]
}

/// Arbitrary small key streams with repetition (Zipf-ish via modulo).
fn key_stream() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..64, 1..400)
}

proptest! {
    /// The one-sided error guarantee: a CBF never underestimates the true
    /// count of any key (up to counter saturation). This is what lets
    /// HybridTier use the estimate as a hotness lower bound.
    #[test]
    fn standard_never_underestimates(keys in key_stream(), width in any_width()) {
        let params = CbfParams::for_capacity(64, 4, 0.001, width);
        let mut cbf = StandardCbf::new(params);
        let mut truth = GroundTruthCounter::new(width);
        for &k in &keys {
            cbf.increment(k);
            truth.increment(k);
        }
        for &k in &keys {
            prop_assert!(cbf.estimate(k) >= truth.estimate(k));
        }
    }

    #[test]
    fn blocked_never_underestimates(keys in key_stream(), width in any_width()) {
        let params = CbfParams::for_capacity(64, 4, 0.001, width);
        let mut cbf = BlockedCbf::new(params);
        let mut truth = GroundTruthCounter::new(width);
        for &k in &keys {
            cbf.increment(k);
            truth.increment(k);
        }
        for &k in &keys {
            prop_assert!(cbf.estimate(k) >= truth.estimate(k));
        }
    }

    /// Cooling preserves the never-underestimate invariant when applied to
    /// both the CBF and the ground truth at the same instants.
    #[test]
    fn cooling_preserves_ordering(
        keys in key_stream(),
        cool_every in 16usize..64,
    ) {
        let params = CbfParams::for_capacity(64, 4, 0.001, CounterWidth::W8);
        let mut cbf = BlockedCbf::new(params);
        let mut truth = GroundTruthCounter::new(CounterWidth::W8);
        for (i, &k) in keys.iter().enumerate() {
            cbf.increment(k);
            truth.increment(k);
            if (i + 1) % cool_every == 0 {
                cbf.cool();
                truth.cool();
            }
        }
        for &k in &keys {
            prop_assert!(
                cbf.estimate(k) >= truth.estimate(k),
                "key {} cbf {} truth {}", k, cbf.estimate(k), truth.estimate(k)
            );
        }
    }

    /// Increments are monotone: an increment never lowers any key's estimate.
    #[test]
    fn increment_is_monotone(keys in key_stream()) {
        let params = CbfParams::for_capacity(64, 4, 0.001, CounterWidth::W8);
        let mut cbf = StandardCbf::new(params);
        for &k in &keys {
            let others: Vec<u32> = (0..16u64).map(|o| cbf.estimate(o)).collect();
            cbf.increment(k);
            for (o, &before) in others.iter().enumerate() {
                prop_assert!(cbf.estimate(o as u64) >= before);
            }
        }
    }

    /// Estimates saturate exactly at the counter-width cap, never beyond.
    #[test]
    fn estimates_bounded_by_cap(keys in key_stream(), width in any_width()) {
        let params = CbfParams::for_capacity(8, 2, 0.01, width);
        let mut cbf = BlockedCbf::new(params);
        for &k in &keys {
            for _ in 0..20 {
                cbf.increment(k);
            }
        }
        for &k in &keys {
            prop_assert!(cbf.estimate(k) <= width.max_count());
        }
    }

    /// Determinism: two filters built with the same parameters observe the
    /// same stream identically. The simulator's reproducibility depends on
    /// this.
    #[test]
    fn deterministic_under_same_seed(keys in key_stream()) {
        let params = CbfParams::for_capacity(128, 4, 0.001, CounterWidth::W4);
        let mut a = BlockedCbf::new(params.clone());
        let mut b = BlockedCbf::new(params);
        for &k in &keys {
            prop_assert_eq!(a.increment(k), b.increment(k));
        }
    }

    /// Blocked CBF: the single touched line is always the same line for the
    /// same key, and lies within the filter's storage.
    #[test]
    fn blocked_touches_one_stable_line(key in any::<u64>()) {
        let params = CbfParams::for_capacity(10_000, 4, 0.001, CounterWidth::W4);
        let cbf = BlockedCbf::new(params);
        let mut l1 = Vec::new();
        let mut l2 = Vec::new();
        cbf.touched_lines(key, &mut l1);
        cbf.touched_lines(key, &mut l2);
        prop_assert_eq!(&l1, &l2);
        prop_assert_eq!(l1.len(), 1);
        let off = l1[0] - cbf.base_addr();
        prop_assert!((off as usize) < cbf.metadata_bytes());
    }

    /// Ground-truth cooling equals integer halving.
    #[test]
    fn ground_truth_cool_is_halving(n in 0u32..1000) {
        let mut g = GroundTruthCounter::with_cap(u32::MAX);
        for _ in 0..n {
            g.increment(5);
        }
        g.cool();
        prop_assert_eq!(g.estimate(5), n / 2);
    }

    /// The word-level block operations (`load_block` + `get_in_words` /
    /// `set_in_words` + `store_block`) match the per-counter `get`/`set`
    /// path bit for bit under random interleaved op sequences, at every
    /// counter width. This is the load-bearing equivalence behind the
    /// word-level `BlockedCbf` fast path.
    #[test]
    fn block_ops_match_scalar_get_set(
        width in any_width(),
        // (slot, value, use_word_path) triples over a 3-block array.
        ops in prop::collection::vec((0usize..384, 0u32..70_000, any::<bool>()), 1..300),
    ) {
        let per_line = width.counters_per_line();
        let len = per_line * 3;
        let mut word_arr = CounterArray::new(len, width);
        let mut scalar_arr = CounterArray::new(len, width);
        for &(slot, value, word_path) in &ops {
            let idx = slot % len;
            // Scalar reference: plain indexed set.
            scalar_arr.set(idx, value);
            if word_path {
                // Word path: load the enclosing block, mutate in registers,
                // store it back.
                let base = (idx / per_line) * per_line;
                let mut words = word_arr.load_block(base);
                width.set_in_words(&mut words, idx - base, value);
                word_arr.store_block(base, words);
            } else {
                word_arr.set(idx, value);
            }
        }
        // Every counter identical, read through both paths.
        for idx in 0..len {
            prop_assert_eq!(word_arr.get(idx), scalar_arr.get(idx), "idx {}", idx);
            let base = (idx / per_line) * per_line;
            let words = word_arr.load_block(base);
            prop_assert_eq!(
                width.get_in_words(&words, idx - base),
                scalar_arr.get(idx),
                "word read idx {}", idx
            );
        }
    }

    /// The word-level `BlockedCbf` increment/estimate equals the
    /// per-counter reference implementation under random op sequences
    /// (interleaved increments, estimates, and cooling), at every width.
    #[test]
    fn blocked_word_path_matches_reference(
        width in any_width(),
        ops in prop::collection::vec((0u64..96, any::<bool>()), 1..300),
        cool_every in 20usize..80,
    ) {
        let params = CbfParams::for_capacity(64, 4, 0.001, width);
        let mut word = BlockedCbf::new(params.clone());
        let mut reference = BlockedCbf::new(params);
        for (i, &(key, is_inc)) in ops.iter().enumerate() {
            if is_inc {
                prop_assert_eq!(word.increment(key), reference.increment_per_counter(key));
            } else {
                prop_assert_eq!(word.estimate(key), reference.estimate_per_counter(key));
            }
            if (i + 1) % cool_every == 0 {
                word.cool();
                reference.cool();
            }
        }
        for key in 0..96u64 {
            prop_assert_eq!(word.estimate(key), reference.estimate_per_counter(key));
        }
    }

    /// The fused `increment_with_prev` equals a discrete
    /// `(estimate, increment)` pair for both layouts.
    #[test]
    fn increment_with_prev_equals_estimate_then_increment(
        width in any_width(),
        keys in key_stream(),
    ) {
        let params = CbfParams::for_capacity(64, 4, 0.001, width);
        let mut fused_b = BlockedCbf::new(params.clone());
        let mut split_b = BlockedCbf::new(params.clone());
        let mut fused_s = StandardCbf::new(params.clone());
        let mut split_s = StandardCbf::new(params);
        for &k in &keys {
            let want = (split_b.estimate(k), split_b.increment(k));
            prop_assert_eq!(fused_b.increment_with_prev(k), want);
            let want = (split_s.estimate(k), split_s.increment(k));
            prop_assert_eq!(fused_s.increment_with_prev(k), want);
        }
    }

    /// Batched increments/estimates equal the sequential scalar loop —
    /// same returned counts, same final filter state — despite the
    /// block-sorted processing order.
    #[test]
    fn batched_ops_equal_sequential(
        width in any_width(),
        keys in prop::collection::vec(0u64..128, 1..200),
    ) {
        let params = CbfParams::for_capacity(64, 4, 0.001, width);
        let mut batched = BlockedCbf::new(params.clone());
        let mut sequential = BlockedCbf::new(params);
        let mut got = Vec::new();
        batched.increment_batch(&keys, &mut got);
        let want: Vec<u32> = keys.iter().map(|&k| sequential.increment(k)).collect();
        prop_assert_eq!(got, want);
        let mut got = Vec::new();
        batched.estimate_batch(&keys, &mut got);
        let want: Vec<u32> = keys.iter().map(|&k| sequential.estimate(k)).collect();
        prop_assert_eq!(got, want);
    }
}

proptest! {
    /// The wide kernels (portable SWAR and, where the CPU has it, AVX2) are
    /// bit-identical to the scalar reference: same probed-field minimum and
    /// same conservative update, across randomized keys, counter widths, and
    /// capacities (which randomize the in-block slot offsets). Runs with and
    /// without `--features simd` in CI — the kernels are always compiled, the
    /// feature only decides whether the public API routes through them.
    #[test]
    fn simd_kernels_match_scalar(
        width in any_width(),
        cap in 64usize..4_096,
        keys in prop::collection::vec(0u64..512, 1..300),
    ) {
        let params = CbfParams::for_capacity(cap, 4, 0.001, width);
        let mut wide = BlockedCbf::new(params.clone());
        let mut scalar = BlockedCbf::new(params);
        for &k in &keys {
            prop_assert_eq!(
                wide.increment_with_prev_simd(k),
                scalar.increment_with_prev_scalar(k),
                "fused increment diverged on key {}", k
            );
            prop_assert_eq!(
                wide.estimate_simd(k),
                scalar.estimate_scalar(k),
                "estimate diverged on key {}", k
            );
            // Cross-path probes: each filter answers for the other's stream.
            prop_assert_eq!(wide.estimate_simd(k ^ 1), scalar.estimate_scalar(k ^ 1));
        }
    }

    /// The raw kernel entry points agree with each other (SWAR vs the
    /// runtime-dispatched implementation) on arbitrary blocks and slot sets.
    #[test]
    fn swar_and_dispatch_agree(
        width in any_width(),
        raw in prop::collection::vec(any::<u64>(), 8),
        raw_slots in prop::collection::vec(0usize..128, 1..8),
    ) {
        use hybridtier_cbf::simd;
        let mut words = [0u64; 8];
        words.copy_from_slice(&raw);
        let slots: Vec<usize> =
            raw_slots.iter().map(|&s| s % width.counters_per_line()).collect();
        let sel = simd::probe_masks(width, slots.iter().copied());
        let min = simd::min_probed_swar(width, &words, &sel);
        prop_assert_eq!(simd::min_probed(width, &words, &sel), min);
        if min < width.max_count() {
            let mut a = words;
            let mut b = words;
            simd::bump_eq_swar(width, &mut a, &sel, min);
            simd::bump_eq(width, &mut b, &sel, min);
            prop_assert_eq!(a, b);
        }
    }
}
