//! Wide kernels for the blocked CBF's fused GET/INCREMENT.
//!
//! A blocked-CBF operation works on one 64-byte [`CounterBlock`] (8×`u64`)
//! and `k` probed counter slots inside it. The scalar path extracts each
//! probed counter with an indexed shift/mask ([`CounterWidth::get_in_words`]).
//! The kernels here instead treat the whole block as a vector:
//!
//! 1. [`probe_masks`] turns the probed slots into **per-word field masks**
//!    (the counter field's bits set for every probed slot in that word).
//!    Duplicate slots OR into the same field — the natural dedup that keeps
//!    the wide conservative update identical to the sequential scalar one,
//!    where a duplicate's second visit sees `min + 1` and skips.
//! 2. [`min_probed`] computes the minimum over the probed fields by masking
//!    every *unprobed* field to the saturation cap (`word | !mask`) and
//!    min-reducing the whole block with packed-lane compares.
//! 3. [`bump_eq`] adds one to every probed field equal to that minimum with
//!    packed-lane equality compares — the conservative-update write pass.
//!
//! Two implementations back the dispatching entry points:
//!
//! * **AVX2** (`core::arch::x86_64`, runtime-detected): the block is two
//!   256-bit registers; nibble/byte/word lanes are reduced with
//!   `min_epu8`/`min_epu16` and updated with `cmpeq`+`add`.
//! * **Portable u64 SWAR**: each word is split into two double-width lane
//!   planes (a 4-bit counter gets an 8-bit lane, and so on), giving every
//!   lane a spare high bit so unsigned per-lane min/equality work with the
//!   classic biased-subtract tricks. Works on any architecture.
//!
//! Both are **bit-identical** to the scalar reference — the probed-field
//! minimum is the same multiset minimum, and exactly the distinct probed
//! fields equal to it get `+1` (`cbf_properties::simd_kernels_match_scalar`
//! pins this under randomized keys, widths, and slot patterns). The `simd`
//! cargo feature switches [`BlockedCbf`](crate::BlockedCbf)'s hot path onto
//! these kernels; without it they are compiled but unused by the filter.

use crate::counters::{CounterBlock, CounterWidth, WORDS_PER_LINE};

/// Builds per-word probe masks for `slots`: for each probed in-block slot,
/// the full counter field (`width.max_count() << shift`) is set in the word
/// holding that slot. Duplicate slots merge into one field.
#[inline]
pub fn probe_masks<I: IntoIterator<Item = usize>>(width: CounterWidth, slots: I) -> CounterBlock {
    let per_word = width.counters_per_word();
    let bits = width.bits();
    let cap = width.max_count() as u64;
    let mut sel = [0u64; WORDS_PER_LINE];
    for s in slots {
        sel[s / per_word] |= cap << ((s % per_word) as u32 * bits);
    }
    sel
}

/// Minimum over the probed counter fields of `words` (masks from
/// [`probe_masks`]; at least one field must be probed).
///
/// Dispatches to AVX2 when available, otherwise the portable SWAR kernel.
#[inline]
pub fn min_probed(width: CounterWidth, words: &CounterBlock, sel: &CounterBlock) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if avx2::available() {
        // SAFETY: AVX2 support was just verified at runtime.
        return unsafe { avx2::min_probed(width, words, sel) };
    }
    min_probed_swar(width, words, sel)
}

/// Adds one to every probed field of `words` whose value equals `min`
/// (the conservative-update write pass; caller guarantees
/// `min < width.max_count()`).
#[inline]
pub fn bump_eq(width: CounterWidth, words: &mut CounterBlock, sel: &CounterBlock, min: u32) {
    #[cfg(target_arch = "x86_64")]
    if avx2::available() {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { avx2::bump_eq(width, words, sel, min) };
        return;
    }
    bump_eq_swar(width, words, sel, min);
}

/// Portable SWAR [`min_probed`] (public so property tests can pin it even
/// on machines where the AVX2 path would win the dispatch).
#[inline]
pub fn min_probed_swar(width: CounterWidth, words: &CounterBlock, sel: &CounterBlock) -> u32 {
    match width {
        CounterWidth::W4 => swar::min_probed::<4>(words, sel),
        CounterWidth::W8 => swar::min_probed::<8>(words, sel),
        CounterWidth::W16 => swar::min_probed::<16>(words, sel),
    }
}

/// Portable SWAR [`bump_eq`] (see [`min_probed_swar`]).
#[inline]
pub fn bump_eq_swar(width: CounterWidth, words: &mut CounterBlock, sel: &CounterBlock, min: u32) {
    match width {
        CounterWidth::W4 => swar::bump_eq::<4>(words, sel, min),
        CounterWidth::W8 => swar::bump_eq::<8>(words, sel, min),
        CounterWidth::W16 => swar::bump_eq::<16>(words, sel, min),
    }
}

/// Whether the AVX2 kernels back the dispatching entry points on this host.
#[inline]
pub fn avx2_active() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        avx2::available()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Portable word-parallel kernels. Counters of `BITS` bits are widened into
/// `2·BITS`-bit lanes (two interleaved planes per word), so every lane has a
/// spare high bit and the biased-subtract tricks for unsigned per-lane
/// comparison cannot borrow across lanes.
mod swar {
    use super::{CounterBlock, WORDS_PER_LINE};

    /// Replicates `pattern` every `lane` bits across a u64.
    #[inline]
    const fn rep(pattern: u64, lane: u32) -> u64 {
        let mut v = 0u64;
        let mut i = 0;
        while i < 64 {
            v |= pattern << i;
            i += lane;
        }
        v
    }

    /// Per-lane unsigned min of `a` and `b` for `l`-bit lanes whose values
    /// all stay below the lane's bias bit `1 << (l - 1)`.
    #[inline]
    fn lane_min(a: u64, b: u64, l: u32, bias: u64) -> u64 {
        // a|bias == a + bias (a < bias), minus b cannot borrow across lanes.
        let d = (a | bias).wrapping_sub(b);
        // Bias bit survives iff a >= b; spread it to a full-lane mask.
        let ge01 = (d & bias) >> (l - 1);
        let ge_mask = ge01.wrapping_mul((1u64 << (l - 1) << 1).wrapping_sub(1));
        (b & ge_mask) | (a & !ge_mask)
    }

    pub fn min_probed<const BITS: u32>(words: &CounterBlock, sel: &CounterBlock) -> u32 {
        let l = 2 * BITS;
        let cap = (1u64 << BITS) - 1;
        let plane = rep(cap, l); // low half of every lane
        let bias = rep(1 << (l - 1), l);
        // Accumulators start at the cap, the largest possible field value.
        let mut lo_acc = rep(cap, l);
        let mut hi_acc = lo_acc;
        for w in 0..WORDS_PER_LINE {
            if sel[w] == 0 {
                continue; // no probed field in this word
            }
            // Unprobed fields read as the cap, so they never beat a probed one.
            let m = words[w] | !sel[w];
            lo_acc = lane_min(lo_acc, m & plane, l, bias);
            hi_acc = lane_min(hi_acc, (m >> BITS) & plane, l, bias);
        }
        let acc = lane_min(lo_acc, hi_acc, l, bias);
        let mut min = cap;
        let mut i = 0;
        while i < 64 {
            min = min.min((acc >> i) & cap);
            i += l;
        }
        min as u32
    }

    pub fn bump_eq<const BITS: u32>(words: &mut CounterBlock, sel: &CounterBlock, min: u32) {
        let l = 2 * BITS;
        let cap = (1u64 << BITS) - 1;
        let plane = rep(cap, l);
        let bias = rep(1 << (l - 1), l);
        let one = rep(1, l);
        let bmin = rep(min as u64, l);
        for w in 0..WORDS_PER_LINE {
            if sel[w] == 0 {
                continue;
            }
            let v = words[w];
            let d_lo = (v & plane) ^ bmin;
            let d_hi = ((v >> BITS) & plane) ^ bmin;
            // bias - d keeps the bias bit iff d == 0 (d < bias per lane).
            let eq01_lo = (bias.wrapping_sub(d_lo) & bias) >> (l - 1);
            let eq01_hi = (bias.wrapping_sub(d_hi) & bias) >> (l - 1);
            // Probed-field indicators at the lane LSB (the cap is odd).
            let sel01_lo = sel[w] & one;
            let sel01_hi = (sel[w] >> BITS) & one;
            let inc_lo = eq01_lo & sel01_lo;
            let inc_hi = eq01_hi & sel01_hi;
            // Equal fields are < cap, so +1 never carries across a field.
            words[w] = v.wrapping_add(inc_lo).wrapping_add(inc_hi << BITS);
        }
    }
}

/// AVX2 kernels: the block is two 256-bit registers; packed-lane min /
/// equality do the probe extraction and conservative update without the
/// scalar per-probe loop.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{CounterBlock, CounterWidth};
    use core::arch::x86_64::*;

    #[inline]
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    #[inline]
    unsafe fn load(block: &CounterBlock) -> (__m256i, __m256i) {
        let p = block.as_ptr() as *const __m256i;
        (_mm256_loadu_si256(p), _mm256_loadu_si256(p.add(1)))
    }

    /// Horizontal min of the 16 byte lanes of `m` (values ≤ 255), via the
    /// pairwise fold into 16-bit lanes + `phminposuw`. `_mm_srli_si128`
    /// alone would shift zero bytes in and corrupt the min.
    #[inline]
    unsafe fn hmin_epu8(m: __m128i) -> u32 {
        let pairs = _mm_min_epu8(m, _mm_srli_epi16(m, 8));
        let words16 = _mm_and_si128(pairs, _mm_set1_epi16(0x00FF));
        (_mm_cvtsi128_si32(_mm_minpos_epu16(words16)) as u32) & 0xFFFF
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn min_probed(width: CounterWidth, words: &CounterBlock, sel: &CounterBlock) -> u32 {
        let (v0, v1) = load(words);
        let (s0, s1) = load(sel);
        let ones = _mm256_set1_epi8(-1);
        // Unprobed fields read as all-ones (the cap).
        let m0 = _mm256_or_si256(v0, _mm256_xor_si256(s0, ones));
        let m1 = _mm256_or_si256(v1, _mm256_xor_si256(s1, ones));
        match width {
            CounterWidth::W4 => {
                let low4 = _mm256_set1_epi8(0x0F);
                // Per byte: min(low nibble, high nibble); every byte stays a
                // valid candidate (unprobed nibbles are the cap 0x0F).
                let a = _mm256_min_epu8(
                    _mm256_and_si256(m0, low4),
                    _mm256_and_si256(_mm256_srli_epi16(m0, 4), low4),
                );
                let b = _mm256_min_epu8(
                    _mm256_and_si256(m1, low4),
                    _mm256_and_si256(_mm256_srli_epi16(m1, 4), low4),
                );
                let m = _mm256_min_epu8(a, b);
                let m128 = _mm_min_epu8(_mm256_castsi256_si128(m), _mm256_extracti128_si256(m, 1));
                hmin_epu8(m128)
            }
            CounterWidth::W8 => {
                let m = _mm256_min_epu8(m0, m1);
                let m128 = _mm_min_epu8(_mm256_castsi256_si128(m), _mm256_extracti128_si256(m, 1));
                hmin_epu8(m128)
            }
            CounterWidth::W16 => {
                let m = _mm256_min_epu16(m0, m1);
                let m128 = _mm_min_epu16(_mm256_castsi256_si128(m), _mm256_extracti128_si256(m, 1));
                (_mm_cvtsi128_si32(_mm_minpos_epu16(m128)) as u32) & 0xFFFF
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn bump_eq(
        width: CounterWidth,
        words: &mut CounterBlock,
        sel: &CounterBlock,
        min: u32,
    ) {
        let (v0, v1) = load(words);
        let (s0, s1) = load(sel);
        let (n0, n1) = match width {
            CounterWidth::W4 => {
                let low4 = _mm256_set1_epi8(0x0F);
                let bmin = _mm256_set1_epi8(min as i8); // min ≤ 14
                let one_lo = _mm256_set1_epi8(0x01);
                let one_hi = _mm256_set1_epi8(0x10);
                let bump = |v: __m256i, s: __m256i| {
                    let lo = _mm256_and_si256(v, low4);
                    let hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low4);
                    // +1 at the nibble's LSB where equal-to-min AND probed
                    // (the probe mask has 0x0F / 0xF0 at probed nibbles).
                    let inc_lo =
                        _mm256_and_si256(_mm256_and_si256(_mm256_cmpeq_epi8(lo, bmin), s), one_lo);
                    let inc_hi =
                        _mm256_and_si256(_mm256_and_si256(_mm256_cmpeq_epi8(hi, bmin), s), one_hi);
                    // Equal nibbles are < 15, so neither add can carry.
                    _mm256_add_epi8(v, _mm256_or_si256(inc_lo, inc_hi))
                };
                (bump(v0, s0), bump(v1, s1))
            }
            CounterWidth::W8 => {
                let bmin = _mm256_set1_epi8(min as i8);
                let one = _mm256_set1_epi8(0x01);
                let bump = |v: __m256i, s: __m256i| {
                    let inc =
                        _mm256_and_si256(_mm256_and_si256(_mm256_cmpeq_epi8(v, bmin), s), one);
                    _mm256_add_epi8(v, inc)
                };
                (bump(v0, s0), bump(v1, s1))
            }
            CounterWidth::W16 => {
                let bmin = _mm256_set1_epi16(min as i16);
                let one = _mm256_set1_epi16(1);
                let bump = |v: __m256i, s: __m256i| {
                    let inc =
                        _mm256_and_si256(_mm256_and_si256(_mm256_cmpeq_epi16(v, bmin), s), one);
                    _mm256_add_epi16(v, inc)
                };
                (bump(v0, s0), bump(v1, s1))
            }
        };
        let p = words.as_mut_ptr() as *mut __m256i;
        _mm256_storeu_si256(p, n0);
        _mm256_storeu_si256(p.add(1), n1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::splitmix64;

    /// Scalar reference for the kernels, straight off `get_in_words`.
    fn scalar_min(width: CounterWidth, words: &CounterBlock, slots: &[usize]) -> u32 {
        slots
            .iter()
            .map(|&s| width.get_in_words(words, s))
            .min()
            .unwrap()
    }

    fn scalar_bump(width: CounterWidth, words: &mut CounterBlock, slots: &[usize], min: u32) {
        for &s in slots {
            if width.get_in_words(words, s) == min {
                width.set_in_words(words, s, min + 1);
            }
        }
    }

    fn random_case(width: CounterWidth, state: &mut u64) -> (CounterBlock, Vec<usize>) {
        let mut words = [0u64; WORDS_PER_LINE];
        for w in &mut words {
            *state = splitmix64(*state);
            *w = *state;
        }
        *state = splitmix64(*state);
        let k = 1 + (*state as usize % 8);
        let slots: Vec<usize> = (0..k)
            .map(|_| {
                *state = splitmix64(*state);
                *state as usize % width.counters_per_line()
            })
            .collect();
        (words, slots)
    }

    #[test]
    fn kernels_match_scalar_on_random_blocks() {
        let mut state = 0xD1CEu64;
        for width in [CounterWidth::W4, CounterWidth::W8, CounterWidth::W16] {
            for _ in 0..2_000 {
                let (words, slots) = random_case(width, &mut state);
                let sel = probe_masks(width, slots.iter().copied());
                let want_min = scalar_min(width, &words, &slots);
                assert_eq!(
                    min_probed_swar(width, &words, &sel),
                    want_min,
                    "{width} swar"
                );
                assert_eq!(
                    min_probed(width, &words, &sel),
                    want_min,
                    "{width} dispatch"
                );
                if want_min < width.max_count() {
                    let mut want = words;
                    scalar_bump(width, &mut want, &slots, want_min);
                    let mut got_swar = words;
                    bump_eq_swar(width, &mut got_swar, &sel, want_min);
                    assert_eq!(got_swar, want, "{width} swar bump");
                    let mut got = words;
                    bump_eq(width, &mut got, &sel, want_min);
                    assert_eq!(got, want, "{width} dispatch bump");
                }
            }
        }
    }

    #[test]
    fn duplicate_slots_bump_once() {
        for width in [CounterWidth::W4, CounterWidth::W8, CounterWidth::W16] {
            let words = [0u64; WORDS_PER_LINE];
            let slots = [3usize, 3, 3];
            let sel = probe_masks(width, slots.iter().copied());
            assert_eq!(min_probed(width, &words, &sel), 0);
            let mut got = words;
            bump_eq(width, &mut got, &sel, 0);
            assert_eq!(width.get_in_words(&got, 3), 1, "{width}: one bump only");
        }
    }
}
