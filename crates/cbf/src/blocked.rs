//! The cache-line-blocked counting Bloom filter (paper §4.2, Figure 8).

use crate::counters::CounterArray;
use crate::hash::{reduce, PageHasher};
use crate::sizing::CbfParams;
use crate::AccessCounter;

/// A blocked counting Bloom filter: each key maps to exactly one 64-byte
/// block, and all `k` of its counters live within that block.
///
/// This guarantees every `GET`/`INCREMENT` touches exactly one cache line —
/// at most one cache miss — versus up to `k` for [`StandardCbf`]
/// (paper §3.3: the final piece of HybridTier's cache-overhead reduction,
/// Figure 14). The price is a slightly higher false-positive rate because
/// collisions concentrate within blocks; the paper finds the trade favorable,
/// and the Table 5 experiment in this repository quantifies it.
///
/// With 4-bit counters a block holds 128 counter slots; with 16-bit counters,
/// 32 slots (paper §4.2).
///
/// [`StandardCbf`]: crate::StandardCbf
#[derive(Debug, Clone)]
pub struct BlockedCbf {
    counters: CounterArray,
    hasher: PageHasher,
    k: u32,
    num_blocks: usize,
    slots_per_block: usize,
    base_addr: u64,
    idx_scratch: Vec<usize>,
}

impl BlockedCbf {
    /// Builds a blocked filter with (at least) the counter count implied by
    /// `params`, rounded up to a whole number of 64-byte blocks.
    ///
    /// # Panics
    ///
    /// Panics if `params.k == 0`, `params.m == 0`, or `k` exceeds the number
    /// of counter slots in one block.
    pub fn new(params: CbfParams) -> Self {
        assert!(params.k > 0, "k must be positive");
        assert!(params.m > 0, "m must be positive");
        let slots_per_block = params.width.counters_per_line();
        assert!(
            (params.k as usize) <= slots_per_block,
            "k={} exceeds {} slots per block",
            params.k,
            slots_per_block
        );
        let num_blocks = params.m.div_ceil(slots_per_block);
        Self {
            counters: CounterArray::new(num_blocks * slots_per_block, params.width),
            hasher: PageHasher::new(params.seed),
            k: params.k,
            num_blocks,
            slots_per_block,
            base_addr: params.base_addr,
            idx_scratch: vec![0; params.k as usize],
        }
    }

    /// Number of 64-byte blocks.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Number of counters (blocks × slots per block).
    pub fn num_counters(&self) -> usize {
        self.counters.len()
    }

    /// Number of hash functions.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Fraction of counters that are non-zero.
    pub fn occupancy(&self) -> f64 {
        self.counters.occupied() as f64 / self.counters.len() as f64
    }

    /// Index of the block `key` maps to.
    #[inline]
    pub fn block_of(&self, key: u64) -> usize {
        // Probe 0 selects the block; probes 1..=k select slots inside it.
        reduce(self.hasher.probe(key, 0), self.num_blocks)
    }

    /// Fills `idx_scratch` with the global counter indices for `key`.
    ///
    /// Slot selection derives each in-block slot from an independent probe.
    /// Duplicate slots within a block are permitted (they simply behave as a
    /// filter with fewer effective hashes for that key), matching hardware
    /// blocked-bloom designs.
    #[inline]
    fn fill_indices(&mut self, key: u64) {
        let block = self.block_of(key);
        let base = block * self.slots_per_block;
        for i in 0..self.k {
            let slot = reduce(self.hasher.probe(key, i + 1), self.slots_per_block);
            self.idx_scratch[i as usize] = base + slot;
        }
    }
}

impl AccessCounter for BlockedCbf {
    fn increment(&mut self, key: u64) -> u32 {
        self.fill_indices(key);
        let min = self
            .idx_scratch
            .iter()
            .map(|&i| self.counters.get(i))
            .min()
            .expect("k > 0");
        if min >= self.counters.width().max_count() {
            return min;
        }
        for j in 0..self.k as usize {
            let i = self.idx_scratch[j];
            if self.counters.get(i) == min {
                self.counters.set(i, min + 1);
            }
        }
        min + 1
    }

    fn estimate(&self, key: u64) -> u32 {
        let block = self.block_of(key);
        let base = block * self.slots_per_block;
        (0..self.k)
            .map(|i| {
                let slot = reduce(self.hasher.probe(key, i + 1), self.slots_per_block);
                self.counters.get(base + slot)
            })
            .min()
            .expect("k > 0")
    }

    fn cool(&mut self) {
        self.counters.halve_all();
    }

    fn reset(&mut self) {
        self.counters.clear();
    }

    fn metadata_bytes(&self) -> usize {
        self.counters.storage_bytes()
    }

    fn touched_lines(&self, key: u64, out: &mut Vec<u64>) {
        // The defining property: exactly one cache line per operation.
        let block = self.block_of(key) as u64;
        out.push(self.base_addr + block * crate::CACHE_LINE_BYTES as u64);
    }

    fn base_addr(&self) -> u64 {
        self.base_addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::CounterWidth;

    fn filter(cap: usize) -> BlockedCbf {
        BlockedCbf::new(CbfParams::for_capacity(cap, 4, 0.001, CounterWidth::W8))
    }

    #[test]
    fn counts_single_key() {
        let mut f = filter(1000);
        for expect in 1..=10 {
            assert_eq!(f.increment(0x1000), expect);
        }
        assert_eq!(f.estimate(0x1000), 10);
        assert_eq!(f.estimate(0x2000), 0);
    }

    #[test]
    fn exactly_one_cache_line_per_op() {
        let f = filter(100_000);
        for key in 0..500u64 {
            let mut lines = Vec::new();
            f.touched_lines(key, &mut lines);
            assert_eq!(lines.len(), 1, "blocked CBF must touch exactly one line");
            assert_eq!(lines[0] % 64, 0);
        }
    }

    #[test]
    fn all_counters_of_a_key_are_in_its_block() {
        let mut f = filter(10_000);
        for key in 0..200u64 {
            f.fill_indices(key);
            let block = f.block_of(key);
            for &idx in &f.idx_scratch {
                assert_eq!(idx / f.slots_per_block, block);
            }
        }
    }

    #[test]
    fn never_underestimates() {
        let mut f = filter(500);
        let mut truth = std::collections::HashMap::new();
        let mut state = 999u64;
        for _ in 0..5_000 {
            state = crate::hash::splitmix64(state);
            let key = state % 400;
            f.increment(key);
            *truth.entry(key).or_insert(0u32) += 1;
        }
        let cap = CounterWidth::W8.max_count();
        for (&key, &count) in &truth {
            assert!(f.estimate(key) >= count.min(cap));
        }
    }

    #[test]
    fn blocked_error_worse_than_standard_but_bounded() {
        // Insert exactly the design load once each; compare overestimates.
        let n = 4_000;
        let params = CbfParams::for_capacity(n, 4, 0.001, CounterWidth::W8);
        let mut blocked = BlockedCbf::new(params.clone());
        let mut standard = crate::StandardCbf::new(params);
        for key in 0..n as u64 {
            blocked.increment(key);
            standard.increment(key);
        }
        let over_b = (0..n as u64).filter(|&k| blocked.estimate(k) > 1).count();
        let over_s = (0..n as u64).filter(|&k| standard.estimate(k) > 1).count();
        // Paper: "blocked CBF has a slightly higher false positive rate".
        assert!(over_b >= over_s, "blocked {over_b} vs standard {over_s}");
        assert!(
            over_b < n / 20,
            "blocked overestimates {over_b}/{n}, beyond the 'slight' regime"
        );
    }

    #[test]
    fn cool_and_reset() {
        let mut f = filter(100);
        for _ in 0..9 {
            f.increment(5);
        }
        f.cool();
        assert_eq!(f.estimate(5), 4);
        f.reset();
        assert_eq!(f.estimate(5), 0);
    }

    #[test]
    fn whole_blocks_allocation() {
        let f = BlockedCbf::new(CbfParams {
            k: 4,
            m: 130, // not a multiple of 128
            width: CounterWidth::W4,
            seed: 0,
            base_addr: 0,
        });
        assert_eq!(f.num_blocks(), 2);
        assert_eq!(f.num_counters(), 256);
        assert_eq!(f.metadata_bytes(), 128);
    }

    #[test]
    fn four_bit_saturation() {
        let mut f = BlockedCbf::new(CbfParams::for_capacity(64, 4, 0.001, CounterWidth::W4));
        for _ in 0..40 {
            f.increment(3);
        }
        assert_eq!(f.estimate(3), 15);
    }
}
