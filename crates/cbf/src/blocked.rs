//! The cache-line-blocked counting Bloom filter (paper §4.2, Figure 8).

use crate::counters::CounterArray;
use crate::hash::{reduce, PageHasher};
use crate::sizing::CbfParams;
use crate::AccessCounter;

/// A blocked counting Bloom filter: each key maps to exactly one 64-byte
/// block, and all `k` of its counters live within that block.
///
/// This guarantees every `GET`/`INCREMENT` touches exactly one cache line —
/// at most one cache miss — versus up to `k` for [`StandardCbf`]
/// (paper §3.3: the final piece of HybridTier's cache-overhead reduction,
/// Figure 14). The price is a slightly higher false-positive rate because
/// collisions concentrate within blocks; the paper finds the trade favorable,
/// and the Table 5 experiment in this repository quantifies it.
///
/// With 4-bit counters a block holds 128 counter slots; with 16-bit counters,
/// 32 slots (paper §4.2).
///
/// # Hot-path engineering
///
/// The simulator practices what the paper preaches, at the instruction level
/// too:
///
/// * the double-hash pair `(h1, h2)` is derived **once** per key and all
///   `k + 1` probe values come from `h1 + i·h2` — not one
///   [`PageHasher::pair`] rehash per probe;
/// * `increment`/`estimate` load the key's 64-byte block as eight whole
///   `u64` words ([`CounterArray::load_block`]), extract and update all `k`
///   counters with shifts/masks in registers, and write the block back once
///   — fusing what used to be a get-min pass plus a set pass of per-counter
///   indexed accesses;
/// * [`increment_batch`](AccessCounter::increment_batch) sorts a batch of
///   keys by block (stably) so consecutive updates touch neighbouring
///   lines.
///
/// All of this is **bit-for-bit identical** to the per-counter reference
/// path ([`increment_per_counter`](BlockedCbf::increment_per_counter)):
/// probe values are algebraically the same, and same-block updates apply in
/// the same order. The `cbf_properties` suite asserts both equivalences
/// under random operation sequences.
///
/// [`StandardCbf`]: crate::StandardCbf
#[derive(Debug, Clone)]
pub struct BlockedCbf {
    counters: CounterArray,
    hasher: PageHasher,
    k: u32,
    num_blocks: usize,
    slots_per_block: usize,
    base_addr: u64,
    /// In-block slot indices of the current key (scratch, k entries).
    slot_scratch: Vec<usize>,
    /// `(block, input position)` pairs for batched ops (scratch).
    batch_scratch: Vec<(u32, u32)>,
}

impl BlockedCbf {
    /// Builds a blocked filter with (at least) the counter count implied by
    /// `params`, rounded up to a whole number of 64-byte blocks.
    ///
    /// # Panics
    ///
    /// Panics if `params.k == 0`, `params.m == 0`, or `k` exceeds the number
    /// of counter slots in one block.
    pub fn new(params: CbfParams) -> Self {
        assert!(params.k > 0, "k must be positive");
        assert!(params.m > 0, "m must be positive");
        let slots_per_block = params.width.counters_per_line();
        assert!(
            (params.k as usize) <= slots_per_block,
            "k={} exceeds {} slots per block",
            params.k,
            slots_per_block
        );
        let num_blocks = params.m.div_ceil(slots_per_block);
        Self {
            counters: CounterArray::new(num_blocks * slots_per_block, params.width),
            hasher: PageHasher::new(params.seed),
            k: params.k,
            num_blocks,
            slots_per_block,
            base_addr: params.base_addr,
            slot_scratch: vec![0; params.k as usize],
            batch_scratch: Vec::new(),
        }
    }

    /// Number of 64-byte blocks.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Number of counters (blocks × slots per block).
    pub fn num_counters(&self) -> usize {
        self.counters.len()
    }

    /// Number of hash functions.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Fraction of counters that are non-zero.
    pub fn occupancy(&self) -> f64 {
        self.counters.occupied() as f64 / self.counters.len() as f64
    }

    /// Index of the block `key` maps to.
    #[inline]
    pub fn block_of(&self, key: u64) -> usize {
        // Probe 0 selects the block; probes 1..=k select slots inside it.
        // probe(key, 0) = h1 + 0·h2 = h1.
        reduce(self.hasher.pair(key).0, self.num_blocks)
    }

    /// Derives the block and all `k` in-block slots of `key` from a single
    /// `(h1, h2)` pair (probe `i` is `h1 + i·h2`, exactly
    /// [`PageHasher::probe`] without the per-probe rehash).
    ///
    /// Duplicate slots within a block are permitted (they simply behave as a
    /// filter with fewer effective hashes for that key), matching hardware
    /// blocked-bloom designs.
    #[inline]
    fn fill_slots(&mut self, key: u64) -> usize {
        let (h1, h2) = self.hasher.pair(key);
        let block = reduce(h1, self.num_blocks);
        for i in 0..self.k as u64 {
            let probe = h1.wrapping_add((i + 1).wrapping_mul(h2));
            self.slot_scratch[i as usize] = reduce(probe, self.slots_per_block);
        }
        block
    }

    /// Per-counter reference implementation of [`AccessCounter::increment`]:
    /// one indexed [`CounterArray::get`]/[`CounterArray::set`] per probe, as
    /// the pre-word-level code did. Retained so equivalence tests and the
    /// `cbf_ops` bench can pin the word-level fast path against it.
    #[doc(hidden)]
    pub fn increment_per_counter(&mut self, key: u64) -> u32 {
        let block = self.fill_slots(key);
        let base = block * self.slots_per_block;
        let min = self
            .slot_scratch
            .iter()
            .map(|&s| self.counters.get(base + s))
            .min()
            .expect("k > 0");
        if min >= self.counters.width().max_count() {
            return min;
        }
        for j in 0..self.k as usize {
            let i = base + self.slot_scratch[j];
            if self.counters.get(i) == min {
                self.counters.set(i, min + 1);
            }
        }
        min + 1
    }

    /// Per-counter reference implementation of [`AccessCounter::estimate`]
    /// (see [`increment_per_counter`](Self::increment_per_counter)).
    #[doc(hidden)]
    pub fn estimate_per_counter(&self, key: u64) -> u32 {
        let (h1, h2) = self.hasher.pair(key);
        let base = reduce(h1, self.num_blocks) * self.slots_per_block;
        (1..=self.k as u64)
            .map(|i| {
                let slot = reduce(h1.wrapping_add(i.wrapping_mul(h2)), self.slots_per_block);
                self.counters.get(base + slot)
            })
            .min()
            .expect("k > 0")
    }
}

impl BlockedCbf {
    /// Word-level scalar implementation of
    /// [`AccessCounter::increment_with_prev`]: per-probe shift/mask
    /// extraction over the loaded block. This is the default hot path; with
    /// the `simd` feature it stays compiled as the equivalence reference the
    /// property suite pins the wide kernels against.
    #[doc(hidden)]
    pub fn increment_with_prev_scalar(&mut self, key: u64) -> (u32, u32) {
        let block = self.fill_slots(key);
        let base = block * self.slots_per_block;
        let width = self.counters.width();
        // One load pass over the block; min-scan and conservative update run
        // on the in-register copy (sequentially, so duplicate slots behave
        // exactly as in the per-counter path); one store pass. The pre-update
        // minimum *is* the estimate, so `(prev, new)` costs one block visit.
        let mut words = self.counters.load_block(base);
        let mut min = u32::MAX;
        for &s in &self.slot_scratch {
            min = min.min(width.get_in_words(&words, s));
        }
        if min >= width.max_count() {
            return (min, min);
        }
        for &s in &self.slot_scratch {
            if width.get_in_words(&words, s) == min {
                width.set_in_words(&mut words, s, min + 1);
            }
        }
        self.counters.store_block(base, words);
        (min, min + 1)
    }

    /// Word-level scalar implementation of [`AccessCounter::estimate`]
    /// (see [`increment_with_prev_scalar`](Self::increment_with_prev_scalar)).
    #[doc(hidden)]
    pub fn estimate_scalar(&self, key: u64) -> u32 {
        let (h1, h2) = self.hasher.pair(key);
        let base = reduce(h1, self.num_blocks) * self.slots_per_block;
        let width = self.counters.width();
        // Read-only: borrow the block and extract the k probed counters
        // (only the probed words are touched — still exactly one line).
        let words = self.counters.block_ref(base);
        (1..=self.k as u64)
            .map(|i| {
                let slot = reduce(h1.wrapping_add(i.wrapping_mul(h2)), self.slots_per_block);
                width.get_in_words(words, slot)
            })
            .min()
            .expect("k > 0")
    }

    /// Wide-kernel implementation of
    /// [`AccessCounter::increment_with_prev`]: probe masks + packed-lane
    /// min/equality over the whole block (see [`crate::simd`]). Bit-identical
    /// to the scalar path; the `simd` feature makes it the hot path.
    #[doc(hidden)]
    pub fn increment_with_prev_simd(&mut self, key: u64) -> (u32, u32) {
        let block = self.fill_slots(key);
        let base = block * self.slots_per_block;
        let width = self.counters.width();
        let sel = crate::simd::probe_masks(width, self.slot_scratch.iter().copied());
        let mut words = self.counters.load_block(base);
        let min = crate::simd::min_probed(width, &words, &sel);
        if min >= width.max_count() {
            return (min, min);
        }
        crate::simd::bump_eq(width, &mut words, &sel, min);
        self.counters.store_block(base, words);
        (min, min + 1)
    }

    /// Wide-kernel implementation of [`AccessCounter::estimate`]
    /// (see [`increment_with_prev_simd`](Self::increment_with_prev_simd)).
    #[doc(hidden)]
    pub fn estimate_simd(&self, key: u64) -> u32 {
        let (h1, h2) = self.hasher.pair(key);
        let base = reduce(h1, self.num_blocks) * self.slots_per_block;
        let width = self.counters.width();
        let sel = crate::simd::probe_masks(
            width,
            (1..=self.k as u64)
                .map(|i| reduce(h1.wrapping_add(i.wrapping_mul(h2)), self.slots_per_block)),
        );
        crate::simd::min_probed(width, self.counters.block_ref(base), &sel)
    }
}

impl AccessCounter for BlockedCbf {
    fn increment(&mut self, key: u64) -> u32 {
        self.increment_with_prev(key).1
    }

    #[cfg(not(feature = "simd"))]
    fn increment_with_prev(&mut self, key: u64) -> (u32, u32) {
        self.increment_with_prev_scalar(key)
    }

    #[cfg(feature = "simd")]
    fn increment_with_prev(&mut self, key: u64) -> (u32, u32) {
        self.increment_with_prev_simd(key)
    }

    #[cfg(not(feature = "simd"))]
    fn estimate(&self, key: u64) -> u32 {
        self.estimate_scalar(key)
    }

    #[cfg(feature = "simd")]
    fn estimate(&self, key: u64) -> u32 {
        self.estimate_simd(key)
    }

    fn increment_batch(&mut self, keys: &[u64], out: &mut Vec<u32>) {
        // Stable block-sort for locality: keys in different blocks share no
        // counters, and same-block keys keep their relative order, so the
        // final filter state and every returned count are identical to the
        // sequential scalar loop (asserted in `cbf_properties`).
        let start = out.len();
        out.resize(start + keys.len(), 0);
        self.batch_scratch.clear();
        for (i, &key) in keys.iter().enumerate() {
            self.batch_scratch
                .push((self.block_of(key) as u32, i as u32));
        }
        self.batch_scratch.sort_by_key(|&(block, _)| block);
        let order = std::mem::take(&mut self.batch_scratch);
        for &(_, i) in &order {
            out[start + i as usize] = self.increment(keys[i as usize]);
        }
        self.batch_scratch = order;
    }

    fn estimate_batch(&self, keys: &[u64], out: &mut Vec<u32>) {
        let mut order: Vec<(u32, u32)> = keys
            .iter()
            .enumerate()
            .map(|(i, &key)| (self.block_of(key) as u32, i as u32))
            .collect();
        order.sort_by_key(|&(block, _)| block);
        let start = out.len();
        out.resize(start + keys.len(), 0);
        for &(_, i) in &order {
            out[start + i as usize] = self.estimate(keys[i as usize]);
        }
    }

    fn cool(&mut self) {
        self.counters.halve_all();
    }

    fn reset(&mut self) {
        self.counters.clear();
    }

    fn metadata_bytes(&self) -> usize {
        self.counters.storage_bytes()
    }

    fn touched_lines(&self, key: u64, out: &mut Vec<u64>) {
        // The defining property: exactly one cache line per operation.
        let block = self.block_of(key) as u64;
        out.push(self.base_addr + block * crate::CACHE_LINE_BYTES as u64);
    }

    fn base_addr(&self) -> u64 {
        self.base_addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::CounterWidth;

    fn filter(cap: usize) -> BlockedCbf {
        BlockedCbf::new(CbfParams::for_capacity(cap, 4, 0.001, CounterWidth::W8))
    }

    #[test]
    fn counts_single_key() {
        let mut f = filter(1000);
        for expect in 1..=10 {
            assert_eq!(f.increment(0x1000), expect);
        }
        assert_eq!(f.estimate(0x1000), 10);
        assert_eq!(f.estimate(0x2000), 0);
    }

    #[test]
    fn exactly_one_cache_line_per_op() {
        let f = filter(100_000);
        for key in 0..500u64 {
            let mut lines = Vec::new();
            f.touched_lines(key, &mut lines);
            assert_eq!(lines.len(), 1, "blocked CBF must touch exactly one line");
            assert_eq!(lines[0] % 64, 0);
        }
    }

    /// Satellite check: one `pair()` call derives the same probe sequence
    /// the old per-probe `PageHasher::probe(key, i)` rehashing produced.
    #[test]
    fn single_pair_derivation_matches_per_probe_hashing() {
        let mut f = filter(10_000);
        let hasher = f.hasher;
        for key in 0..500u64 {
            let legacy_block = reduce(hasher.probe(key, 0), f.num_blocks);
            let legacy_slots: Vec<usize> = (0..f.k)
                .map(|i| reduce(hasher.probe(key, i + 1), f.slots_per_block))
                .collect();
            let block = f.fill_slots(key);
            assert_eq!(block, legacy_block, "key {key}: block diverged");
            assert_eq!(f.slot_scratch, legacy_slots, "key {key}: slots diverged");
            assert_eq!(f.block_of(key), legacy_block);
        }
    }

    #[test]
    fn all_counters_of_a_key_are_in_its_block() {
        let mut f = filter(10_000);
        for key in 0..200u64 {
            let block = f.fill_slots(key);
            assert_eq!(block, f.block_of(key));
            for &slot in &f.slot_scratch {
                assert!(slot < f.slots_per_block, "slot escapes the block");
            }
        }
    }

    #[test]
    fn word_level_ops_match_per_counter_reference() {
        let mut word = filter(2_000);
        let mut scalar = filter(2_000);
        let mut state = 77u64;
        for _ in 0..20_000 {
            state = crate::hash::splitmix64(state);
            let key = state % 700;
            assert_eq!(word.increment(key), scalar.increment_per_counter(key));
            let probe = state % 900;
            assert_eq!(word.estimate(probe), scalar.estimate_per_counter(probe));
        }
    }

    #[test]
    fn batched_ops_match_scalar_order() {
        let mut batched = filter(2_000);
        let mut scalar = filter(2_000);
        let mut state = 5u64;
        for round in 0..50 {
            let keys: Vec<u64> = (0..97)
                .map(|_| {
                    state = crate::hash::splitmix64(state);
                    state % 500
                })
                .collect();
            let mut got = Vec::new();
            batched.increment_batch(&keys, &mut got);
            let want: Vec<u32> = keys.iter().map(|&k| scalar.increment(k)).collect();
            assert_eq!(got, want, "round {round}: increment_batch diverged");
            got.clear();
            batched.estimate_batch(&keys, &mut got);
            let want: Vec<u32> = keys.iter().map(|&k| scalar.estimate(k)).collect();
            assert_eq!(got, want, "round {round}: estimate_batch diverged");
        }
    }

    #[test]
    fn never_underestimates() {
        let mut f = filter(500);
        let mut truth = std::collections::HashMap::new();
        let mut state = 999u64;
        for _ in 0..5_000 {
            state = crate::hash::splitmix64(state);
            let key = state % 400;
            f.increment(key);
            *truth.entry(key).or_insert(0u32) += 1;
        }
        let cap = CounterWidth::W8.max_count();
        for (&key, &count) in &truth {
            assert!(f.estimate(key) >= count.min(cap));
        }
    }

    #[test]
    fn blocked_error_worse_than_standard_but_bounded() {
        // Insert exactly the design load once each; compare overestimates.
        let n = 4_000;
        let params = CbfParams::for_capacity(n, 4, 0.001, CounterWidth::W8);
        let mut blocked = BlockedCbf::new(params.clone());
        let mut standard = crate::StandardCbf::new(params);
        for key in 0..n as u64 {
            blocked.increment(key);
            standard.increment(key);
        }
        let over_b = (0..n as u64).filter(|&k| blocked.estimate(k) > 1).count();
        let over_s = (0..n as u64).filter(|&k| standard.estimate(k) > 1).count();
        // Paper: "blocked CBF has a slightly higher false positive rate".
        assert!(over_b >= over_s, "blocked {over_b} vs standard {over_s}");
        assert!(
            over_b < n / 20,
            "blocked overestimates {over_b}/{n}, beyond the 'slight' regime"
        );
    }

    #[test]
    fn cool_and_reset() {
        let mut f = filter(100);
        for _ in 0..9 {
            f.increment(5);
        }
        f.cool();
        assert_eq!(f.estimate(5), 4);
        f.reset();
        assert_eq!(f.estimate(5), 0);
    }

    #[test]
    fn whole_blocks_allocation() {
        let f = BlockedCbf::new(CbfParams {
            k: 4,
            m: 130, // not a multiple of 128
            width: CounterWidth::W4,
            seed: 0,
            base_addr: 0,
        });
        assert_eq!(f.num_blocks(), 2);
        assert_eq!(f.num_counters(), 256);
        assert_eq!(f.metadata_bytes(), 128);
    }

    #[test]
    fn four_bit_saturation() {
        let mut f = BlockedCbf::new(CbfParams::for_capacity(64, 4, 0.001, CounterWidth::W4));
        for _ in 0..40 {
            f.increment(3);
        }
        assert_eq!(f.estimate(3), 15);
    }
}
