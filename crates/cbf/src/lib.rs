//! Counting Bloom filters for probabilistic memory-access tracking.
//!
//! This crate implements the metadata data structures at the heart of
//! HybridTier (ASPLOS'25): counting Bloom filters (CBF) with packed
//! 4/8/16-bit saturating counters, in two layouts:
//!
//! * [`StandardCbf`] — the textbook CBF: `k` hash functions index anywhere
//!   in one large counter array. A lookup touches up to `k` cache lines.
//! * [`BlockedCbf`] — the cache-local variant adopted by HybridTier: a page
//!   maps to exactly one 64-byte block, and all `k` counters live inside that
//!   block, so every operation touches exactly one cache line.
//!
//! Both support the two operations from the paper (§4.2): `GET` returns the
//! minimum of the `k` counters ([`AccessCounter::estimate`]) and `INCREMENT`
//! increments the minimum counters ([`AccessCounter::increment`], the
//! *conservative update* rule). A third operation, [`AccessCounter::cool`],
//! halves every counter in place and implements the exponential-moving-average
//! decay (decay factor 2) that frequency-based tiering systems use to keep
//! their histograms fresh.
//!
//! Filter sizing follows the classic Bloom-filter formula (paper §4.2):
//! `r = -k / ln(1 - exp(ln(p) / k))`, `m = ceil(n * r)` — see [`counters_for`].
//!
//! # Word-level layout
//!
//! Counters are packed into `u64` words ([`CounterArray`]); a blocked
//! filter's 64-byte block is exactly eight words
//! ([`CounterBlock`]). The hot operations exploit this end to end:
//!
//! * one [`PageHasher::pair`] call per key yields all `k + 1` probe values
//!   as `h1 + i·h2` (Kirsch–Mitzenmacher), instead of rehashing per probe;
//! * [`BlockedCbf`] `GET`/`INCREMENT` load the key's block once as whole
//!   words, extract/update every counter with shifts and masks in
//!   registers, and store the block back once — the simulator-side twin of
//!   the paper's one-cache-line-per-op design;
//! * [`AccessCounter::increment_batch`] / [`AccessCounter::estimate_batch`]
//!   process runs of keys sorted (stably) by block so adjacent updates
//!   touch adjacent lines.
//!
//! None of this changes results: probe values are algebraically identical
//! to the per-probe derivation, word extraction mirrors
//! [`CounterArray::get`]/[`set`](CounterArray::set) bit for bit, and
//! same-block batch entries keep their input order. The `cbf_properties`
//! test suite pins each of these equivalences under random op sequences.
//!
//! # The `simd` feature
//!
//! With `--features simd`, [`BlockedCbf`]'s `GET`/`INCREMENT` (and through
//! them the block-sorted batch operations) run on the wide kernels of the
//! [`simd`] module: AVX2 packed-lane min/equality over the whole block where
//! the CPU supports it (runtime-detected), and a portable u64-SWAR fallback
//! everywhere else. Both are bit-identical to the scalar path, which stays
//! compiled as the property-test reference
//! ([`BlockedCbf::increment_with_prev_scalar`]).
//!
//! # Example
//!
//! ```
//! use hybridtier_cbf::{AccessCounter, BlockedCbf, CbfParams, CounterWidth};
//!
//! // Track ~10_000 hot pages with a 0.1% tracking-error target.
//! let params = CbfParams::for_capacity(10_000, 4, 0.001, CounterWidth::W4);
//! let mut cbf = BlockedCbf::new(params);
//! for _ in 0..5 {
//!     cbf.increment(0x1000);
//! }
//! assert_eq!(cbf.estimate(0x1000), 5);
//! cbf.cool(); // EMA decay: all counters halved
//! assert_eq!(cbf.estimate(0x1000), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod blocked;
mod counters;
mod ground_truth;
mod hash;
pub mod simd;
mod sizing;
mod standard;

pub use blocked::BlockedCbf;
pub use counters::{CounterArray, CounterBlock, CounterWidth, WORDS_PER_LINE};
pub use ground_truth::{DecisionOutcome, GroundTruthCounter};
pub use hash::PageHasher;
pub use sizing::{counters_for, CbfParams};
pub use standard::StandardCbf;

/// Number of bytes in a CPU cache line; blocked CBFs confine each key's
/// counters to one line of this size.
pub const CACHE_LINE_BYTES: usize = 64;

/// A frequency counter keyed by page number, as used by HybridTier's
/// frequency and momentum trackers.
///
/// Implementations may be exact ([`GroundTruthCounter`]) or probabilistic
/// ([`StandardCbf`], [`BlockedCbf`]). Probabilistic implementations may
/// *overestimate* a key's count (hash collisions) but never underestimate it,
/// up to the saturation cap of the counter width.
pub trait AccessCounter {
    /// Records one access to `key` and returns the new estimated count.
    ///
    /// Counters saturate at the maximum value representable by the
    /// implementation's counter width; once saturated, further increments
    /// return the cap unchanged.
    fn increment(&mut self, key: u64) -> u32;

    /// Returns the estimated access count of `key`.
    fn estimate(&self, key: u64) -> u32;

    /// Records one access to `key`, returning `(previous, new)` estimated
    /// counts.
    ///
    /// Semantically identical to `(self.estimate(key), self.increment(key))`
    /// — the conservative-update increment already computes the pre-update
    /// minimum, so implementations can report it without a second probe
    /// pass. HybridTier's sample ingest uses this to halve its
    /// frequency-tracker traffic.
    fn increment_with_prev(&mut self, key: u64) -> (u32, u32) {
        (self.estimate(key), self.increment(key))
    }

    /// Records one access per key, appending each new count to `out` in
    /// input order.
    ///
    /// Semantically identical to calling [`increment`](Self::increment) in
    /// a loop; implementations may reorder *independent* probes for memory
    /// locality (the blocked CBF sorts keys by block — see
    /// [`BlockedCbf`]) as long as every returned count and the final filter
    /// state match the sequential loop exactly.
    fn increment_batch(&mut self, keys: &[u64], out: &mut Vec<u32>) {
        out.reserve(keys.len());
        for &key in keys {
            out.push(self.increment(key));
        }
    }

    /// Estimates one count per key, appending to `out` in input order
    /// (batched mirror of [`estimate`](Self::estimate)).
    fn estimate_batch(&self, keys: &[u64], out: &mut Vec<u32>) {
        out.reserve(keys.len());
        for &key in keys {
            out.push(self.estimate(key));
        }
    }

    /// Halves every counter (exponential decay with factor 2).
    ///
    /// This is the "cooling" operation that frequency-based tiering systems
    /// run periodically to age out stale hotness (paper §2.3.2).
    fn cool(&mut self);

    /// Resets every counter to zero.
    fn reset(&mut self);

    /// Bytes of metadata memory consumed by this tracker.
    fn metadata_bytes(&self) -> usize;

    /// Appends the cache-line addresses (relative to this structure's own
    /// address space, starting at [`AccessCounter::base_addr`]) that one
    /// operation on `key` touches.
    ///
    /// The simulation engine replays these through the cache simulator to
    /// attribute cache misses to tiering metadata (paper Figures 5, 13, 14).
    fn touched_lines(&self, key: u64, out: &mut Vec<u64>);

    /// Base virtual address this tracker pretends to occupy, so that
    /// different trackers' metadata do not alias in the cache simulator.
    fn base_addr(&self) -> u64;
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn counters_are_send_sync() {
        assert_send_sync::<StandardCbf>();
        assert_send_sync::<BlockedCbf>();
        assert_send_sync::<GroundTruthCounter>();
    }

    /// Exercises every implementation through the trait object interface,
    /// which the policy crate relies on.
    #[test]
    fn trait_object_usable() {
        let params = CbfParams::for_capacity(128, 4, 0.01, CounterWidth::W8);
        let mut impls: Vec<Box<dyn AccessCounter>> = vec![
            Box::new(StandardCbf::new(params.clone())),
            Box::new(BlockedCbf::new(params)),
            Box::new(GroundTruthCounter::new(CounterWidth::W8)),
        ];
        for c in &mut impls {
            assert_eq!(c.estimate(42), 0);
            assert_eq!(c.increment(42), 1);
            assert!(c.estimate(42) >= 1);
            c.cool();
            c.reset();
            assert_eq!(c.estimate(42), 0);
            assert!(c.metadata_bytes() > 0 || c.estimate(1) == 0);
        }
    }
}
