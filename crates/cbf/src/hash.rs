//! Double hashing for CBF index derivation.
//!
//! Uses the Kirsch–Mitzenmacher construction: two independent 64-bit hashes
//! `h1`, `h2` derived from the key via `splitmix64`, combined as
//! `h1 + i * h2` to produce the `k` probe indices. `splitmix64` is a
//! high-quality, dependency-free finalizer whose avalanche behaviour is more
//! than sufficient for Bloom-filter indexing.

/// The splitmix64 finalizer (Steele et al.), a bijective 64-bit mixer.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derives `k` probe indices for a key via double hashing.
///
/// Cloning a `PageHasher` is free; it holds only the two seed words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageHasher {
    seed1: u64,
    seed2: u64,
}

impl Default for PageHasher {
    fn default() -> Self {
        Self::new(0x5EED_0001_F00D_CAFE)
    }
}

impl PageHasher {
    /// Creates a hasher with the given seed (experiments fix seeds for
    /// reproducibility).
    pub fn new(seed: u64) -> Self {
        Self {
            seed1: splitmix64(seed),
            seed2: splitmix64(seed ^ 0xA5A5_A5A5_A5A5_A5A5),
        }
    }

    /// The two base hashes for `key`. The second hash is forced odd so the
    /// probe sequence cycles through all residues of a power-of-two table.
    #[inline]
    pub fn pair(&self, key: u64) -> (u64, u64) {
        let h1 = splitmix64(key ^ self.seed1);
        let h2 = splitmix64(key ^ self.seed2) | 1;
        (h1, h2)
    }

    /// The `i`-th probe value for `key` (reduce modulo the table size to get
    /// an index).
    #[inline]
    pub fn probe(&self, key: u64, i: u32) -> u64 {
        let (h1, h2) = self.pair(key);
        h1.wrapping_add((i as u64).wrapping_mul(h2))
    }
}

/// Fast range reduction: maps a 64-bit hash to `[0, n)` without division
/// (Lemire's multiply-shift).
#[inline]
pub fn reduce(hash: u64, n: usize) -> usize {
    ((hash as u128 * n as u128) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn probes_are_deterministic() {
        let h = PageHasher::new(7);
        for key in [0u64, 1, 0x1000, u64::MAX] {
            for i in 0..8 {
                assert_eq!(h.probe(key, i), h.probe(key, i));
            }
        }
    }

    #[test]
    fn different_seeds_give_different_probes() {
        let a = PageHasher::new(1);
        let b = PageHasher::new(2);
        let same = (0..100u64)
            .filter(|&k| a.probe(k, 0) == b.probe(k, 0))
            .count();
        assert_eq!(
            same, 0,
            "independent seeds should essentially never collide"
        );
    }

    #[test]
    fn second_hash_is_odd() {
        let h = PageHasher::default();
        for key in 0..1000u64 {
            let (_, h2) = h.pair(key);
            assert_eq!(h2 & 1, 1);
        }
    }

    #[test]
    fn reduce_stays_in_range_and_spreads() {
        let n = 1000;
        let mut seen = HashSet::new();
        for key in 0..10_000u64 {
            let idx = reduce(splitmix64(key), n);
            assert!(idx < n);
            seen.insert(idx);
        }
        // 10k uniform draws over 1k buckets should hit nearly every bucket.
        assert!(seen.len() > 990, "only {} of {} buckets hit", seen.len(), n);
    }

    #[test]
    fn probe_distribution_is_roughly_uniform() {
        let h = PageHasher::default();
        let n = 64;
        let mut hist = vec![0u32; n];
        for key in 0..64_000u64 {
            hist[reduce(h.probe(key, 0), n)] += 1;
        }
        let expected = 64_000 / n as u32;
        for (i, &c) in hist.iter().enumerate() {
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < expected as u64 / 2,
                "bucket {i} count {c} far from expected {expected}"
            );
        }
    }
}
