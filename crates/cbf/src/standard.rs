//! The standard (unblocked) counting Bloom filter.

use crate::counters::CounterArray;
use crate::hash::{reduce, PageHasher};
use crate::sizing::CbfParams;
use crate::AccessCounter;

/// A textbook counting Bloom filter: `k` hash functions index anywhere in a
/// single array of `m` counters (paper §4.2, Figure 7).
///
/// `GET` returns the minimum of the `k` counters; `INCREMENT` applies the
/// *conservative update* rule, incrementing only the counters currently equal
/// to the minimum. Conservative update dominates plain increment-all for
/// count accuracy and is what the paper's Figure 7 illustrates (only the
/// minimum counters move).
///
/// Because the `k` indices are spread over the whole array, one operation
/// touches up to `k` distinct cache lines — the locality weakness that
/// motivates [`BlockedCbf`](crate::BlockedCbf) (paper §3.3).
#[derive(Debug, Clone)]
pub struct StandardCbf {
    counters: CounterArray,
    hasher: PageHasher,
    k: u32,
    base_addr: u64,
    /// Scratch for probe indices, to keep the hot path allocation-free.
    idx_scratch: Vec<usize>,
}

impl StandardCbf {
    /// Builds a filter from the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params.k == 0` or `params.m == 0`.
    pub fn new(params: CbfParams) -> Self {
        assert!(params.k > 0, "k must be positive");
        assert!(params.m > 0, "m must be positive");
        Self {
            counters: CounterArray::new(params.m, params.width),
            hasher: PageHasher::new(params.seed),
            k: params.k,
            base_addr: params.base_addr,
            idx_scratch: vec![0; params.k as usize],
        }
    }

    /// Number of counters in the filter.
    pub fn num_counters(&self) -> usize {
        self.counters.len()
    }

    /// Number of hash functions.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Fraction of counters that are non-zero (diagnostic; a nearly full
    /// filter overestimates heavily).
    pub fn occupancy(&self) -> f64 {
        self.counters.occupied() as f64 / self.counters.len() as f64
    }

    /// Derives all `k` probe indices from a single `(h1, h2)` pair (probe
    /// `i` is `h1 + i·h2`, exactly [`PageHasher::probe`] without the
    /// per-probe rehash).
    #[inline]
    fn fill_indices(&mut self, key: u64) {
        let m = self.counters.len();
        let (h1, h2) = self.hasher.pair(key);
        for i in 0..self.k as u64 {
            self.idx_scratch[i as usize] = reduce(h1.wrapping_add(i.wrapping_mul(h2)), m);
        }
    }
}

impl AccessCounter for StandardCbf {
    fn increment(&mut self, key: u64) -> u32 {
        self.increment_with_prev(key).1
    }

    fn increment_with_prev(&mut self, key: u64) -> (u32, u32) {
        self.fill_indices(key);
        let min = self
            .idx_scratch
            .iter()
            .map(|&i| self.counters.get(i))
            .min()
            .expect("k > 0");
        if min >= self.counters.width().max_count() {
            return (min, min); // saturated
        }
        // Conservative update: bump only the counters at the minimum.
        for j in 0..self.k as usize {
            let i = self.idx_scratch[j];
            if self.counters.get(i) == min {
                self.counters.set(i, min + 1);
            }
        }
        (min, min + 1)
    }

    fn estimate(&self, key: u64) -> u32 {
        let m = self.counters.len();
        let (h1, h2) = self.hasher.pair(key);
        (0..self.k as u64)
            .map(|i| {
                self.counters
                    .get(reduce(h1.wrapping_add(i.wrapping_mul(h2)), m))
            })
            .min()
            .expect("k > 0")
    }

    fn cool(&mut self) {
        self.counters.halve_all();
    }

    fn reset(&mut self) {
        self.counters.clear();
    }

    fn metadata_bytes(&self) -> usize {
        self.counters.storage_bytes()
    }

    fn touched_lines(&self, key: u64, out: &mut Vec<u64>) {
        let m = self.counters.len();
        let bits = self.counters.width().bits() as u64;
        let (h1, h2) = self.hasher.pair(key);
        for i in 0..self.k as u64 {
            let idx = reduce(h1.wrapping_add(i.wrapping_mul(h2)), m) as u64;
            let byte = idx * bits / 8;
            out.push(self.base_addr + (byte & !(crate::CACHE_LINE_BYTES as u64 - 1)));
        }
    }

    fn base_addr(&self) -> u64 {
        self.base_addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::CounterWidth;

    fn filter(cap: usize) -> StandardCbf {
        StandardCbf::new(CbfParams::for_capacity(cap, 4, 0.001, CounterWidth::W8))
    }

    #[test]
    fn counts_single_key_exactly() {
        let mut f = filter(1000);
        for expect in 1..=20 {
            assert_eq!(f.increment(42), expect);
        }
        assert_eq!(f.estimate(42), 20);
        assert_eq!(f.estimate(43), 0, "untouched key reads zero");
    }

    #[test]
    fn never_underestimates() {
        // The one-sided error guarantee: estimate >= true count (below cap).
        let mut f = filter(500);
        let mut truth = std::collections::HashMap::new();
        let mut state = 12345u64;
        for _ in 0..5_000 {
            state = crate::hash::splitmix64(state);
            let key = state % 400;
            f.increment(key);
            *truth.entry(key).or_insert(0u32) += 1;
        }
        let cap = CounterWidth::W8.max_count();
        for (&key, &count) in &truth {
            assert!(
                f.estimate(key) >= count.min(cap),
                "key {key}: estimate {} < truth {count}",
                f.estimate(key)
            );
        }
    }

    #[test]
    fn tracking_error_is_rare_at_design_load() {
        // At the designed capacity with p=0.001, overestimates should be rare.
        let mut f = StandardCbf::new(CbfParams::for_capacity(2_000, 4, 0.001, CounterWidth::W8));
        for key in 0..2_000u64 {
            f.increment(key);
        }
        let overestimated = (0..2_000u64).filter(|&k| f.estimate(k) > 1).count();
        assert!(
            overestimated < 20,
            "{overestimated} of 2000 keys overestimated (expected ~2)"
        );
    }

    #[test]
    fn saturates_at_width_cap() {
        let mut f = StandardCbf::new(CbfParams::for_capacity(100, 4, 0.001, CounterWidth::W4));
        for _ in 0..100 {
            f.increment(7);
        }
        assert_eq!(f.estimate(7), 15);
    }

    #[test]
    fn cool_halves_estimates() {
        let mut f = filter(1000);
        for _ in 0..10 {
            f.increment(1);
        }
        for _ in 0..5 {
            f.increment(2);
        }
        f.cool();
        assert_eq!(f.estimate(1), 5);
        assert_eq!(f.estimate(2), 2);
    }

    #[test]
    fn reset_clears() {
        let mut f = filter(100);
        f.increment(9);
        f.reset();
        assert_eq!(f.estimate(9), 0);
        assert_eq!(f.occupancy(), 0.0);
    }

    #[test]
    fn touched_lines_reports_up_to_k_lines() {
        let f = filter(100_000);
        let mut lines = Vec::new();
        f.touched_lines(0xABC, &mut lines);
        assert_eq!(lines.len(), 4);
        for &l in &lines {
            assert_eq!(l % 64, 0, "line addresses are 64B aligned");
            assert!(l >= f.base_addr());
        }
    }

    #[test]
    fn conservative_update_beats_increment_all() {
        // Construct heavy collision pressure and verify the estimate of a
        // cold key stays below what increment-all would produce.
        let mut f = StandardCbf::new(CbfParams {
            k: 4,
            m: 256,
            width: CounterWidth::W8,
            seed: 1,
            base_addr: 0,
        });
        for key in 0..1_000u64 {
            f.increment(key % 100);
        }
        // Total counter mass under conservative update must be <= k * inserts.
        let total: u64 = (0..256).map(|i| f.counters.get(i) as u64).sum();
        assert!(total < 4 * 1_000, "conservative update added {total} mass");
    }
}
