//! Exact per-key counting, used as ground truth for CBF accuracy studies.

use std::collections::HashMap;

use crate::counters::CounterWidth;
use crate::AccessCounter;

/// An exact (hash-table backed) access counter.
///
/// This is the "exact data structure" of paper §3.2 — the memory-hungry
/// alternative a CBF replaces — and the ground truth for the Table 5
/// migration-decision accuracy experiment (§6.4.2), where the paper runs a
/// hash table alongside the CBF and counts decision agreements.
///
/// Counts saturate at the same cap as the CBF under comparison so that
/// saturation alone never registers as disagreement.
#[derive(Debug, Clone, Default)]
pub struct GroundTruthCounter {
    counts: HashMap<u64, u32>,
    cap: u32,
    base_addr: u64,
}

impl GroundTruthCounter {
    /// Creates an exact counter whose counts saturate at `width.max_count()`.
    pub fn new(width: CounterWidth) -> Self {
        Self {
            counts: HashMap::new(),
            cap: width.max_count(),
            base_addr: 0x7400_0000_0000,
        }
    }

    /// Creates an exact counter with an explicit saturation cap.
    pub fn with_cap(cap: u32) -> Self {
        Self {
            counts: HashMap::new(),
            cap,
            base_addr: 0x7400_0000_0000,
        }
    }

    /// Number of distinct keys ever incremented.
    pub fn distinct_keys(&self) -> usize {
        self.counts.len()
    }

    /// Iterates over `(key, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }
}

impl AccessCounter for GroundTruthCounter {
    fn increment(&mut self, key: u64) -> u32 {
        let e = self.counts.entry(key).or_insert(0);
        if *e < self.cap {
            *e += 1;
        }
        *e
    }

    fn estimate(&self, key: u64) -> u32 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    fn cool(&mut self) {
        self.counts.retain(|_, v| {
            *v /= 2;
            *v > 0
        });
    }

    fn reset(&mut self) {
        self.counts.clear();
    }

    fn metadata_bytes(&self) -> usize {
        // HashMap<u64, u32> entry: key + value + bucket overhead ≈ 16B, the
        // same figure the paper charges Memtis per page.
        self.counts.len() * 16
    }

    fn touched_lines(&self, key: u64, out: &mut Vec<u64>) {
        // Model a hash-table lookup as one bucket-array line plus one entry
        // line derived from the key hash (HeMem-style chained table,
        // paper §3.3 / Algorithm 1 analysis).
        let h = crate::hash::splitmix64(key);
        out.push(self.base_addr + (h % (1 << 20)) * 64);
        out.push(self.base_addr + (1 << 26) + (h >> 32) % (1 << 20) * 64);
    }

    fn base_addr(&self) -> u64 {
        self.base_addr
    }
}

/// Outcome of comparing a probabilistic tracker's migration decision against
/// ground truth (Table 5 of the paper).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionOutcome {
    /// Decisions where CBF and ground truth agree.
    pub agree: u64,
    /// Decisions where they disagree (tracking error changed the decision).
    pub disagree: u64,
}

impl DecisionOutcome {
    /// Records one comparison of "would promote?" under both trackers.
    pub fn record(&mut self, cbf_hot: bool, truth_hot: bool) {
        if cbf_hot == truth_hot {
            self.agree += 1;
        } else {
            self.disagree += 1;
        }
    }

    /// Fraction of decisions that agree, in `[0, 1]`; 1.0 when no decisions
    /// were recorded.
    pub fn accuracy(&self) -> f64 {
        let total = self.agree + self.disagree;
        if total == 0 {
            1.0
        } else {
            self.agree as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_counts() {
        let mut g = GroundTruthCounter::new(CounterWidth::W16);
        for _ in 0..100 {
            g.increment(1);
        }
        g.increment(2);
        assert_eq!(g.estimate(1), 100);
        assert_eq!(g.estimate(2), 1);
        assert_eq!(g.estimate(3), 0);
        assert_eq!(g.distinct_keys(), 2);
    }

    #[test]
    fn saturates_at_width_cap() {
        let mut g = GroundTruthCounter::new(CounterWidth::W4);
        for _ in 0..100 {
            g.increment(1);
        }
        assert_eq!(g.estimate(1), 15);
    }

    #[test]
    fn cool_halves_and_drops_zeroes() {
        let mut g = GroundTruthCounter::new(CounterWidth::W16);
        for _ in 0..7 {
            g.increment(1);
        }
        g.increment(2);
        g.cool();
        assert_eq!(g.estimate(1), 3);
        assert_eq!(g.estimate(2), 0);
        assert_eq!(g.distinct_keys(), 1, "zeroed entries are reclaimed");
    }

    #[test]
    fn metadata_grows_with_keys() {
        let mut g = GroundTruthCounter::new(CounterWidth::W4);
        assert_eq!(g.metadata_bytes(), 0);
        for key in 0..1000 {
            g.increment(key);
        }
        assert_eq!(g.metadata_bytes(), 16_000);
    }

    #[test]
    fn decision_outcome_accuracy() {
        let mut d = DecisionOutcome::default();
        assert_eq!(d.accuracy(), 1.0);
        d.record(true, true);
        d.record(false, false);
        d.record(true, false);
        d.record(false, true);
        assert_eq!(d.agree, 2);
        assert_eq!(d.disagree, 2);
        assert!((d.accuracy() - 0.5).abs() < 1e-12);
    }
}
