//! Packed saturating counter arrays.
//!
//! HybridTier stores CBF counters at 4 bits each in base-page mode (cap 15;
//! paper §3.2: "pages with access count ≥ 15 should all be placed in fast-tier
//! memory, thus there is no need to differentiate between them") and 16 bits
//! in huge-page mode (§4.4). An 8-bit width is provided for experimentation.

use std::fmt;

/// `u64` words per 64-byte cache-line block (the unit of the word-level
/// block operations below).
pub const WORDS_PER_LINE: usize = crate::CACHE_LINE_BYTES / 8;

/// One cache-line block of packed counters, loaded/stored as whole words.
///
/// [`CounterArray::load_block`] copies the eight `u64` words backing one
/// 64-byte block into registers; counters are then extracted and updated
/// in-place with shifts and masks ([`CounterWidth::get_in_words`] /
/// [`CounterWidth::set_in_words`]) and the block is written back once with
/// [`CounterArray::store_block`]. This is the simulator-side analogue of the
/// paper's one-cache-line-per-op engineering (§4.2): a `k`-probe
/// GET+INCREMENT does one load pass and one store pass over the block
/// instead of `2k` independent read-modify-write word accesses.
pub type CounterBlock = [u64; WORDS_PER_LINE];

/// Width of each counter in a [`CounterArray`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterWidth {
    /// 4-bit counters saturating at 15 (HybridTier base-page default).
    W4,
    /// 8-bit counters saturating at 255.
    W8,
    /// 16-bit counters saturating at 65 535 (HybridTier huge-page mode).
    W16,
}

impl CounterWidth {
    /// Number of bits per counter.
    pub const fn bits(self) -> u32 {
        match self {
            CounterWidth::W4 => 4,
            CounterWidth::W8 => 8,
            CounterWidth::W16 => 16,
        }
    }

    /// Saturation cap (maximum representable count).
    pub const fn max_count(self) -> u32 {
        match self {
            CounterWidth::W4 => 15,
            CounterWidth::W8 => 255,
            CounterWidth::W16 => 65_535,
        }
    }

    /// How many counters of this width fit in one 64-byte cache line.
    pub const fn counters_per_line(self) -> usize {
        (crate::CACHE_LINE_BYTES * 8) / self.bits() as usize
    }

    /// How many counters of this width fit in one `u64` word.
    pub const fn counters_per_word(self) -> usize {
        64 / self.bits() as usize
    }

    /// Reads in-block counter `slot` from a loaded [`CounterBlock`].
    ///
    /// Bit arithmetic is identical to [`CounterArray::get`] on the
    /// corresponding global index, provided the block was loaded from a
    /// block-aligned position — asserted by the `cbf_properties` suite.
    #[inline]
    pub fn get_in_words(self, words: &CounterBlock, slot: usize) -> u32 {
        let per_word = self.counters_per_word();
        let shift = (slot % per_word) as u32 * self.bits();
        ((words[slot / per_word] >> shift) & self.max_count() as u64) as u32
    }

    /// Writes in-block counter `slot` of a loaded [`CounterBlock`],
    /// clamping `value` to the saturation cap (mirror of
    /// [`CounterArray::set`]).
    #[inline]
    pub fn set_in_words(self, words: &mut CounterBlock, slot: usize, value: u32) {
        let cap = self.max_count();
        let per_word = self.counters_per_word();
        let shift = (slot % per_word) as u32 * self.bits();
        let mask = (cap as u64) << shift;
        let w = &mut words[slot / per_word];
        *w = (*w & !mask) | ((value.min(cap) as u64) << shift);
    }
}

impl fmt::Display for CounterWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit", self.bits())
    }
}

/// A dense array of `len` saturating counters, packed `width.bits()` bits
/// each into `u64` words.
///
/// All index arithmetic is branch-light so that the simulator can run tens of
/// millions of updates per second.
#[derive(Debug, Clone)]
pub struct CounterArray {
    width: CounterWidth,
    len: usize,
    words: Vec<u64>,
}

impl CounterArray {
    /// Creates an array of `len` zeroed counters.
    pub fn new(len: usize, width: CounterWidth) -> Self {
        let per_word = 64 / width.bits() as usize;
        let words = len.div_ceil(per_word);
        Self {
            width,
            len,
            words: vec![0u64; words],
        }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array holds zero counters.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Counter width.
    pub fn width(&self) -> CounterWidth {
        self.width
    }

    /// Bytes of backing storage.
    pub fn storage_bytes(&self) -> usize {
        self.words.len() * 8
    }

    #[inline]
    fn slot(&self, idx: usize) -> (usize, u32) {
        debug_assert!(
            idx < self.len,
            "counter index {idx} out of bounds {}",
            self.len
        );
        let bits = self.width.bits();
        let per_word = 64 / bits;
        (idx / per_word as usize, (idx as u32 % per_word) * bits)
    }

    /// Reads counter `idx`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `idx >= len`.
    #[inline]
    pub fn get(&self, idx: usize) -> u32 {
        let (word, shift) = self.slot(idx);
        let mask = self.width.max_count() as u64;
        ((self.words[word] >> shift) & mask) as u32
    }

    /// Writes counter `idx`, clamping `value` to the saturation cap.
    #[inline]
    pub fn set(&mut self, idx: usize, value: u32) {
        let cap = self.width.max_count();
        let v = value.min(cap) as u64;
        let (word, shift) = self.slot(idx);
        let mask = (cap as u64) << shift;
        let w = &mut self.words[word];
        *w = (*w & !mask) | (v << shift);
    }

    /// Copies the 64-byte block starting at counter `first` into a stack
    /// [`CounterBlock`] (one load pass; the paper's blocked CBF touches
    /// exactly this one line per operation).
    ///
    /// `first` must be line-aligned: a multiple of
    /// [`CounterWidth::counters_per_line`].
    ///
    /// # Panics
    ///
    /// Panics in debug builds on a misaligned `first` or when the block
    /// extends past the backing words.
    #[inline]
    pub fn load_block(&self, first: usize) -> CounterBlock {
        debug_assert!(
            first.is_multiple_of(self.width.counters_per_line()),
            "block start {first} not line-aligned"
        );
        let w0 = first / self.width.counters_per_word();
        let mut words = [0u64; WORDS_PER_LINE];
        words.copy_from_slice(&self.words[w0..w0 + WORDS_PER_LINE]);
        words
    }

    /// Borrows the 64-byte block starting at counter `first` as whole
    /// words, without copying — the read-only sibling of
    /// [`load_block`](Self::load_block). `estimate` uses this so only the
    /// probed words of the (single) line are actually loaded.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on a misaligned `first` (see
    /// [`load_block`](Self::load_block)).
    #[inline]
    pub fn block_ref(&self, first: usize) -> &CounterBlock {
        debug_assert!(
            first.is_multiple_of(self.width.counters_per_line()),
            "block start {first} not line-aligned"
        );
        let w0 = first / self.width.counters_per_word();
        (&self.words[w0..w0 + WORDS_PER_LINE])
            .try_into()
            .expect("slice is exactly one block")
    }

    /// Writes a [`CounterBlock`] back to the block starting at counter
    /// `first` (one store pass; see [`load_block`](Self::load_block)).
    #[inline]
    pub fn store_block(&mut self, first: usize, words: CounterBlock) {
        debug_assert!(
            first.is_multiple_of(self.width.counters_per_line()),
            "block start {first} not line-aligned"
        );
        let w0 = first / self.width.counters_per_word();
        self.words[w0..w0 + WORDS_PER_LINE].copy_from_slice(&words);
    }

    /// Increments counter `idx` by one, saturating at the cap; returns the
    /// new value.
    #[inline]
    pub fn saturating_inc(&mut self, idx: usize) -> u32 {
        let v = self.get(idx);
        if v < self.width.max_count() {
            self.set(idx, v + 1);
            v + 1
        } else {
            v
        }
    }

    /// Halves every counter in place (EMA decay factor 2).
    ///
    /// Works word-at-a-time: shifting the whole word right by one and masking
    /// out the bit that would bleed across counter boundaries — the same
    /// bit-trick a production implementation uses, so cooling an `m`-counter
    /// filter is `O(m / 16)` word operations for 4-bit counters.
    pub fn halve_all(&mut self) {
        let bits = self.width.bits();
        // Mask with the top bit of every counter field cleared, so a 1-bit
        // right shift never imports the neighbour counter's low bit.
        let field_mask: u64 = match bits {
            4 => 0x7777_7777_7777_7777,
            8 => 0x7F7F_7F7F_7F7F_7F7F,
            16 => 0x7FFF_7FFF_7FFF_7FFF,
            _ => unreachable!("unsupported width"),
        };
        for w in &mut self.words {
            *w = (*w >> 1) & field_mask;
        }
    }

    /// Resets every counter to zero.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Sum of all counters (used for occupancy statistics and tests).
    pub fn total(&self) -> u64 {
        (0..self.len).map(|i| self.get(i) as u64).sum()
    }

    /// Number of non-zero counters.
    pub fn occupied(&self) -> usize {
        (0..self.len).filter(|&i| self.get(i) != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_pack_correctly() {
        assert_eq!(CounterWidth::W4.counters_per_line(), 128);
        assert_eq!(CounterWidth::W8.counters_per_line(), 64);
        assert_eq!(CounterWidth::W16.counters_per_line(), 32);
    }

    #[test]
    fn get_set_roundtrip_all_widths() {
        for width in [CounterWidth::W4, CounterWidth::W8, CounterWidth::W16] {
            let mut arr = CounterArray::new(100, width);
            for i in 0..100 {
                arr.set(i, (i as u32 * 7) % (width.max_count() + 1));
            }
            for i in 0..100 {
                assert_eq!(arr.get(i), (i as u32 * 7) % (width.max_count() + 1));
            }
        }
    }

    #[test]
    fn set_clamps_to_cap() {
        let mut arr = CounterArray::new(4, CounterWidth::W4);
        arr.set(2, 1000);
        assert_eq!(arr.get(2), 15);
        assert_eq!(arr.get(1), 0, "neighbours untouched");
        assert_eq!(arr.get(3), 0, "neighbours untouched");
    }

    #[test]
    fn saturating_inc_saturates() {
        let mut arr = CounterArray::new(1, CounterWidth::W4);
        for expect in 1..=15 {
            assert_eq!(arr.saturating_inc(0), expect);
        }
        assert_eq!(arr.saturating_inc(0), 15, "stays at cap");
    }

    #[test]
    fn halve_all_is_per_counter_floor_division() {
        for width in [CounterWidth::W4, CounterWidth::W8, CounterWidth::W16] {
            let mut arr = CounterArray::new(64, width);
            let cap = width.max_count();
            for i in 0..64 {
                arr.set(i, (i as u32 * 3 + 1) % (cap + 1));
            }
            let before: Vec<u32> = (0..64).map(|i| arr.get(i)).collect();
            arr.halve_all();
            for (i, b) in before.iter().enumerate() {
                assert_eq!(arr.get(i), b / 2, "width {width} idx {i}");
            }
        }
    }

    #[test]
    fn halve_all_does_not_leak_across_counters() {
        let mut arr = CounterArray::new(16, CounterWidth::W4);
        // Alternate max/zero; halving must not bleed a bit into the zeros.
        for i in 0..16 {
            arr.set(i, if i % 2 == 0 { 15 } else { 0 });
        }
        arr.halve_all();
        for i in 0..16 {
            assert_eq!(arr.get(i), if i % 2 == 0 { 7 } else { 0 });
        }
    }

    #[test]
    fn clear_zeroes_everything() {
        let mut arr = CounterArray::new(33, CounterWidth::W16);
        for i in 0..33 {
            arr.set(i, 9);
        }
        arr.clear();
        assert_eq!(arr.total(), 0);
        assert_eq!(arr.occupied(), 0);
    }

    #[test]
    fn block_ops_mirror_get_set() {
        for width in [CounterWidth::W4, CounterWidth::W8, CounterWidth::W16] {
            let per_line = width.counters_per_line();
            let mut arr = CounterArray::new(per_line * 3, width);
            for i in 0..arr.len() {
                arr.set(i, (i as u32 * 5 + 3) % (width.max_count() + 1));
            }
            // Middle block: word-level reads match scalar reads.
            let base = per_line;
            let words = arr.load_block(base);
            for slot in 0..per_line {
                assert_eq!(
                    width.get_in_words(&words, slot),
                    arr.get(base + slot),
                    "width {width} slot {slot}"
                );
            }
            // Word-level writes round-trip through a store and clamp.
            let mut words = arr.load_block(base);
            width.set_in_words(&mut words, 1, 1_000_000);
            width.set_in_words(&mut words, 2, 1);
            arr.store_block(base, words);
            assert_eq!(arr.get(base + 1), width.max_count(), "clamped");
            assert_eq!(arr.get(base + 2), 1);
            assert_eq!(arr.get(base), words[0] as u32 & width.max_count());
            // Neighbouring blocks untouched.
            assert_eq!(
                arr.get(base - 1),
                ((base - 1) as u32 * 5 + 3) % (width.max_count() + 1)
            );
            assert_eq!(
                arr.get(base + per_line),
                ((base + per_line) as u32 * 5 + 3) % (width.max_count() + 1)
            );
        }
    }

    #[test]
    fn storage_is_packed() {
        // 128 4-bit counters = 64 bytes.
        let arr = CounterArray::new(128, CounterWidth::W4);
        assert_eq!(arr.storage_bytes(), 64);
        // 100 counters round up to whole words.
        let arr = CounterArray::new(100, CounterWidth::W4);
        assert_eq!(arr.storage_bytes(), 56);
    }
}
