//! Packed saturating counter arrays.
//!
//! HybridTier stores CBF counters at 4 bits each in base-page mode (cap 15;
//! paper §3.2: "pages with access count ≥ 15 should all be placed in fast-tier
//! memory, thus there is no need to differentiate between them") and 16 bits
//! in huge-page mode (§4.4). An 8-bit width is provided for experimentation.

use std::fmt;

/// Width of each counter in a [`CounterArray`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterWidth {
    /// 4-bit counters saturating at 15 (HybridTier base-page default).
    W4,
    /// 8-bit counters saturating at 255.
    W8,
    /// 16-bit counters saturating at 65 535 (HybridTier huge-page mode).
    W16,
}

impl CounterWidth {
    /// Number of bits per counter.
    pub const fn bits(self) -> u32 {
        match self {
            CounterWidth::W4 => 4,
            CounterWidth::W8 => 8,
            CounterWidth::W16 => 16,
        }
    }

    /// Saturation cap (maximum representable count).
    pub const fn max_count(self) -> u32 {
        match self {
            CounterWidth::W4 => 15,
            CounterWidth::W8 => 255,
            CounterWidth::W16 => 65_535,
        }
    }

    /// How many counters of this width fit in one 64-byte cache line.
    pub const fn counters_per_line(self) -> usize {
        (crate::CACHE_LINE_BYTES * 8) / self.bits() as usize
    }
}

impl fmt::Display for CounterWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit", self.bits())
    }
}

/// A dense array of `len` saturating counters, packed `width.bits()` bits
/// each into `u64` words.
///
/// All index arithmetic is branch-light so that the simulator can run tens of
/// millions of updates per second.
#[derive(Debug, Clone)]
pub struct CounterArray {
    width: CounterWidth,
    len: usize,
    words: Vec<u64>,
}

impl CounterArray {
    /// Creates an array of `len` zeroed counters.
    pub fn new(len: usize, width: CounterWidth) -> Self {
        let per_word = 64 / width.bits() as usize;
        let words = len.div_ceil(per_word);
        Self {
            width,
            len,
            words: vec![0u64; words],
        }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array holds zero counters.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Counter width.
    pub fn width(&self) -> CounterWidth {
        self.width
    }

    /// Bytes of backing storage.
    pub fn storage_bytes(&self) -> usize {
        self.words.len() * 8
    }

    #[inline]
    fn slot(&self, idx: usize) -> (usize, u32) {
        debug_assert!(
            idx < self.len,
            "counter index {idx} out of bounds {}",
            self.len
        );
        let bits = self.width.bits();
        let per_word = 64 / bits;
        (idx / per_word as usize, (idx as u32 % per_word) * bits)
    }

    /// Reads counter `idx`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `idx >= len`.
    #[inline]
    pub fn get(&self, idx: usize) -> u32 {
        let (word, shift) = self.slot(idx);
        let mask = self.width.max_count() as u64;
        ((self.words[word] >> shift) & mask) as u32
    }

    /// Writes counter `idx`, clamping `value` to the saturation cap.
    #[inline]
    pub fn set(&mut self, idx: usize, value: u32) {
        let cap = self.width.max_count();
        let v = value.min(cap) as u64;
        let (word, shift) = self.slot(idx);
        let mask = (cap as u64) << shift;
        let w = &mut self.words[word];
        *w = (*w & !mask) | (v << shift);
    }

    /// Increments counter `idx` by one, saturating at the cap; returns the
    /// new value.
    #[inline]
    pub fn saturating_inc(&mut self, idx: usize) -> u32 {
        let v = self.get(idx);
        if v < self.width.max_count() {
            self.set(idx, v + 1);
            v + 1
        } else {
            v
        }
    }

    /// Halves every counter in place (EMA decay factor 2).
    ///
    /// Works word-at-a-time: shifting the whole word right by one and masking
    /// out the bit that would bleed across counter boundaries — the same
    /// bit-trick a production implementation uses, so cooling an `m`-counter
    /// filter is `O(m / 16)` word operations for 4-bit counters.
    pub fn halve_all(&mut self) {
        let bits = self.width.bits();
        // Mask with the top bit of every counter field cleared, so a 1-bit
        // right shift never imports the neighbour counter's low bit.
        let field_mask: u64 = match bits {
            4 => 0x7777_7777_7777_7777,
            8 => 0x7F7F_7F7F_7F7F_7F7F,
            16 => 0x7FFF_7FFF_7FFF_7FFF,
            _ => unreachable!("unsupported width"),
        };
        for w in &mut self.words {
            *w = (*w >> 1) & field_mask;
        }
    }

    /// Resets every counter to zero.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Sum of all counters (used for occupancy statistics and tests).
    pub fn total(&self) -> u64 {
        (0..self.len).map(|i| self.get(i) as u64).sum()
    }

    /// Number of non-zero counters.
    pub fn occupied(&self) -> usize {
        (0..self.len).filter(|&i| self.get(i) != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_pack_correctly() {
        assert_eq!(CounterWidth::W4.counters_per_line(), 128);
        assert_eq!(CounterWidth::W8.counters_per_line(), 64);
        assert_eq!(CounterWidth::W16.counters_per_line(), 32);
    }

    #[test]
    fn get_set_roundtrip_all_widths() {
        for width in [CounterWidth::W4, CounterWidth::W8, CounterWidth::W16] {
            let mut arr = CounterArray::new(100, width);
            for i in 0..100 {
                arr.set(i, (i as u32 * 7) % (width.max_count() + 1));
            }
            for i in 0..100 {
                assert_eq!(arr.get(i), (i as u32 * 7) % (width.max_count() + 1));
            }
        }
    }

    #[test]
    fn set_clamps_to_cap() {
        let mut arr = CounterArray::new(4, CounterWidth::W4);
        arr.set(2, 1000);
        assert_eq!(arr.get(2), 15);
        assert_eq!(arr.get(1), 0, "neighbours untouched");
        assert_eq!(arr.get(3), 0, "neighbours untouched");
    }

    #[test]
    fn saturating_inc_saturates() {
        let mut arr = CounterArray::new(1, CounterWidth::W4);
        for expect in 1..=15 {
            assert_eq!(arr.saturating_inc(0), expect);
        }
        assert_eq!(arr.saturating_inc(0), 15, "stays at cap");
    }

    #[test]
    fn halve_all_is_per_counter_floor_division() {
        for width in [CounterWidth::W4, CounterWidth::W8, CounterWidth::W16] {
            let mut arr = CounterArray::new(64, width);
            let cap = width.max_count();
            for i in 0..64 {
                arr.set(i, (i as u32 * 3 + 1) % (cap + 1));
            }
            let before: Vec<u32> = (0..64).map(|i| arr.get(i)).collect();
            arr.halve_all();
            for (i, b) in before.iter().enumerate() {
                assert_eq!(arr.get(i), b / 2, "width {width} idx {i}");
            }
        }
    }

    #[test]
    fn halve_all_does_not_leak_across_counters() {
        let mut arr = CounterArray::new(16, CounterWidth::W4);
        // Alternate max/zero; halving must not bleed a bit into the zeros.
        for i in 0..16 {
            arr.set(i, if i % 2 == 0 { 15 } else { 0 });
        }
        arr.halve_all();
        for i in 0..16 {
            assert_eq!(arr.get(i), if i % 2 == 0 { 7 } else { 0 });
        }
    }

    #[test]
    fn clear_zeroes_everything() {
        let mut arr = CounterArray::new(33, CounterWidth::W16);
        for i in 0..33 {
            arr.set(i, 9);
        }
        arr.clear();
        assert_eq!(arr.total(), 0);
        assert_eq!(arr.occupied(), 0);
    }

    #[test]
    fn storage_is_packed() {
        // 128 4-bit counters = 64 bytes.
        let arr = CounterArray::new(128, CounterWidth::W4);
        assert_eq!(arr.storage_bytes(), 64);
        // 100 counters round up to whole words.
        let arr = CounterArray::new(100, CounterWidth::W4);
        assert_eq!(arr.storage_bytes(), 56);
    }
}
