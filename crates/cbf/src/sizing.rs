//! Bloom-filter sizing formulas (paper §4.2).
//!
//! HybridTier sizes its filters from the target tracking-error probability
//! `p`, the number of hash functions `k`, and the expected number of tracked
//! elements `n` (the number of fast-tier pages):
//!
//! ```text
//! r = -k / ln(1 - exp(ln(p) / k))      counters per element
//! m = ceil(n * r)                      total counters
//! ```
//!
//! With the paper's defaults `k = 4`, `p = 0.001` this yields ≈ 20.4 counters
//! per element, i.e. ≈ 10.2 bytes per tracked page at 4 bits per counter.

use crate::counters::CounterWidth;

/// Computes `m`, the number of counters for a filter expected to hold `n`
/// elements with `k` hashes at false-positive rate `p`.
///
/// # Panics
///
/// Panics if `k == 0`, `n == 0`, or `p` is not in `(0, 1)`.
pub fn counters_for(n: usize, k: u32, p: f64) -> usize {
    assert!(k > 0, "k must be positive");
    assert!(n > 0, "n must be positive");
    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1), got {p}");
    let r = -(k as f64) / (1.0 - (p.ln() / k as f64).exp()).ln();
    (n as f64 * r).ceil() as usize
}

/// Complete parameter set for constructing a CBF.
#[derive(Debug, Clone, PartialEq)]
pub struct CbfParams {
    /// Number of hash functions (paper default: 4).
    pub k: u32,
    /// Total number of counters in the filter.
    pub m: usize,
    /// Counter width (4-bit for base pages, 16-bit for huge pages).
    pub width: CounterWidth,
    /// Hash seed, fixed per experiment for reproducibility.
    pub seed: u64,
    /// Base virtual address of the filter's storage in the simulated address
    /// space (used for cache-miss attribution).
    pub base_addr: u64,
}

impl CbfParams {
    /// Sizes a filter for `capacity` expected elements at error rate `p`
    /// using [`counters_for`], with a default seed and base address.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`counters_for`].
    pub fn for_capacity(capacity: usize, k: u32, p: f64, width: CounterWidth) -> Self {
        Self {
            k,
            m: counters_for(capacity, k, p),
            width,
            seed: 0xC0FF_EE00,
            base_addr: 0x7000_0000_0000,
        }
    }

    /// Sizes a filter by its total metadata budget in bytes (used by the
    /// Table 5 accuracy-vs-size sweep).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is too small to hold a single counter.
    pub fn for_budget_bytes(bytes: usize, k: u32, width: CounterWidth) -> Self {
        let m = bytes * 8 / width.bits() as usize;
        assert!(m > 0, "budget {bytes}B too small for any {width} counter");
        Self {
            k,
            m,
            width,
            seed: 0xC0FF_EE00,
            base_addr: 0x7000_0000_0000,
        }
    }

    /// Returns a copy with a different hash seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different base address.
    #[must_use]
    pub fn with_base_addr(mut self, base: u64) -> Self {
        self.base_addr = base;
        self
    }

    /// Returns a copy scaled to `1/divisor` of the counters, as HybridTier
    /// does for its momentum tracker (128× smaller than the frequency
    /// tracker, paper §4.2).
    #[must_use]
    pub fn scaled_down(mut self, divisor: usize) -> Self {
        self.m = (self.m / divisor).max(self.width.counters_per_line());
        self
    }

    /// Bytes of counter storage this parameter set implies.
    pub fn storage_bytes(&self) -> usize {
        (self.m * self.width.bits() as usize).div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_give_about_20_counters_per_element() {
        // k=4, p=0.001 → r ≈ 20.41.
        let m = counters_for(1_000_000, 4, 0.001);
        let r = m as f64 / 1e6;
        assert!((20.0..21.0).contains(&r), "r = {r}");
    }

    #[test]
    fn lower_error_means_bigger_filter() {
        let loose = counters_for(10_000, 4, 0.01);
        let tight = counters_for(10_000, 4, 0.0001);
        assert!(tight > loose);
    }

    #[test]
    fn more_hashes_changes_ratio() {
        let k2 = counters_for(10_000, 2, 0.001);
        let k8 = counters_for(10_000, 8, 0.001);
        // At p=0.001 the optimum k is ~10; k=2 is far off and needs more
        // counters than k=8.
        assert!(k2 > k8, "k2={k2} k8={k8}");
    }

    #[test]
    #[should_panic(expected = "p must be in (0, 1)")]
    fn rejects_bad_probability() {
        counters_for(10, 4, 1.5);
    }

    #[test]
    fn budget_sizing_roundtrips() {
        let params = CbfParams::for_budget_bytes(64 << 10, 4, CounterWidth::W4);
        assert_eq!(params.m, (64 << 10) * 2); // 2 counters per byte at 4 bits
        assert_eq!(params.storage_bytes(), 64 << 10);
    }

    #[test]
    fn momentum_scaling_is_128x() {
        let freq = CbfParams::for_capacity(1_000_000, 4, 0.001, CounterWidth::W4);
        let mom = freq.clone().scaled_down(128);
        assert_eq!(mom.m, freq.m / 128);
        assert!(mom.storage_bytes() * 100 < freq.storage_bytes());
    }

    #[test]
    fn scaled_down_never_below_one_line() {
        let tiny = CbfParams::for_capacity(10, 4, 0.01, CounterWidth::W4).scaled_down(1 << 20);
        assert_eq!(tiny.m, CounterWidth::W4.counters_per_line());
    }
}
