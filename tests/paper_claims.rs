//! Integration tests pinning the paper's qualitative claims — small-budget
//! versions of the headline experiments that must keep holding as the code
//! evolves.

use hybridtier::prelude::*;

/// Paper §3.2 / Table 4: HybridTier's metadata is several times smaller than
/// Memtis's 16 B/page, and the gap widens as the fast tier shrinks.
#[test]
fn metadata_reduction_and_scaling() {
    let footprint = 120_000u64;
    let mut reductions = Vec::new();
    for ratio in TierRatio::ALL {
        let cfg = TierConfig::for_footprint(footprint, ratio, PageSize::Base4K);
        let memtis = build_policy(PolicyKind::Memtis, &cfg).metadata_bytes();
        let ht = build_policy(PolicyKind::HybridTier, &cfg).metadata_bytes();
        assert!(
            ht * 2 < memtis,
            "{ratio}: HybridTier {ht}B vs Memtis {memtis}B"
        );
        reductions.push(memtis as f64 / ht as f64);
    }
    // Reduction is largest at 1:16 and shrinks toward 1:4 (paper: 7.8x→2.0x).
    assert!(
        reductions[0] > reductions[2],
        "reduction should shrink with bigger fast tiers: {reductions:?}"
    );
}

/// Paper §6.4.2 / Table 5: at the design size the CBF agrees with an exact
/// tracker on the overwhelming majority of migration decisions.
#[test]
fn cbf_migration_decision_accuracy() {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let zipf = hybridtier::workloads::ZipfDistribution::new(50_000, 0.99);
    let mut rng = SmallRng::seed_from_u64(13);
    let mut cbf = BlockedCbf::new(CbfParams::for_capacity(20_000, 4, 0.001, CounterWidth::W4));
    let mut exact = GroundTruthCounter::new(CounterWidth::W4);
    let threshold = 4;
    let mut outcome = hybridtier::cbf::DecisionOutcome::default();
    for i in 0..300_000u64 {
        let page = zipf.sample_rank(&mut rng) as u64;
        let c = cbf.increment(page);
        let e = exact.increment(page);
        outcome.record(c >= threshold, e >= threshold);
        if i % 100_000 == 99_999 {
            cbf.cool();
            exact.cool();
        }
    }
    assert!(
        outcome.accuracy() > 0.99,
        "design-size CBF accuracy {:.4} below 99%",
        outcome.accuracy()
    );
}

/// Paper Figure 3(a): the EMA score of a page that turned cold lags many
/// minutes behind — the motivation for momentum tracking.
#[test]
fn ema_lag_reproduces() {
    let series = hybridtier::policies::ema_lag_series(50, 10, 2, 30);
    let drop = series
        .iter()
        .position(|&s| s < 10)
        .expect("eventually cools");
    assert!(
        drop >= 15,
        "EMA stayed hot only until minute {drop}; paper shows ~19"
    );
}

/// Paper Figure 4 in miniature: after a hotness shift, HybridTier recovers
/// its fast-tier hit rate faster than a frequency-only system whose
/// demotions wait on cooling.
#[test]
fn hybridtier_adapts_faster_than_memtis() {
    let shift = 400_000_000u64;
    let run = |kind: PolicyKind| {
        let mut w = CacheLibWorkload::new(
            CacheLibConfig::cdn()
                .with_uniform_size(16 << 10)
                .without_churn()
                .with_seed(21)
                .with_shift(shift, 2.0 / 3.0),
        );
        let pages = w.footprint_pages(PageSize::Base4K);
        let tier_cfg = TierConfig::for_footprint(pages, TierRatio::OneTo16, PageSize::Base4K);
        let mut policy = build_policy(kind, &tier_cfg);
        let cfg = SimConfig {
            window_ns: 100_000_000,
            max_sim_ns: 3_000_000_000,
            ..SimConfig::default()
        };
        Engine::new(cfg).run(&mut w, policy.as_mut(), tier_cfg)
    };
    let ht = run(PolicyKind::HybridTier);
    let memtis = run(PolicyKind::Memtis);
    // Compare the mean latency integrated over the post-shift second: the
    // faster adapter accumulates less slow-tier time.
    let post_mean = |r: &SimReport| {
        let pts: Vec<u64> = r
            .timeline
            .iter()
            .filter(|p| p.t_ns > shift && p.t_ns <= shift + 1_000_000_000 && p.ops > 0)
            .map(|p| p.mean_ns)
            .collect();
        pts.iter().sum::<u64>() as f64 / pts.len().max(1) as f64
    };
    let (h, m) = (post_mean(&ht), post_mean(&memtis));
    assert!(
        h < m,
        "HybridTier post-shift mean {h:.0}ns should beat Memtis {m:.0}ns"
    );
}

/// Paper §6.1: ARC and TwoQ promote on first touch — under a one-time scan
/// they churn the fast tier far more than HybridTier does.
#[test]
fn scan_resistance_of_hybridtier() {
    let run = |kind: PolicyKind| {
        let mut w = SequentialScanWorkload::new(20_000, 2, 4096);
        let pages = w.footprint_pages(PageSize::Base4K);
        let tier_cfg = TierConfig::for_footprint(pages, TierRatio::OneTo8, PageSize::Base4K);
        let mut policy = build_policy(kind, &tier_cfg);
        Engine::new(SimConfig::default()).run(&mut w, policy.as_mut(), tier_cfg)
    };
    let ht = run(PolicyKind::HybridTier);
    let arc = run(PolicyKind::Arc);
    assert!(
        ht.migrations.promotions * 5 < arc.migrations.promotions.max(1),
        "scan: HybridTier promoted {} vs ARC {} — momentum threshold should \
         filter one-time accesses",
        ht.migrations.promotions,
        arc.migrations.promotions
    );
}

/// Blocked CBF touches one line per op; standard touches up to k — verified
/// end-to-end through the policy layer (paper Figure 14's mechanism).
#[test]
fn blocked_cbf_reduces_metadata_lines_through_policy() {
    let tier_cfg = TierConfig::for_footprint(50_000, TierRatio::OneTo8, PageSize::Base4K);
    let count_lines = |kind: PolicyKind| {
        let mut policy = build_policy(kind, &tier_cfg);
        let mut mem = TieredMemory::new(tier_cfg);
        let mut ctx = PolicyCtx::new();
        for i in 0..2_000u64 {
            mem.ensure_mapped(PageId(i), Tier::Slow);
        }
        for i in 0..2_000u64 {
            policy.on_sample(
                Sample {
                    page: PageId(i),
                    addr: i << 12,
                    tier: Tier::Slow,
                    at_ns: i,
                    is_write: false,
                },
                &mut mem,
                &mut ctx,
            );
        }
        ctx.metadata_lines.len()
    };
    let blocked = count_lines(PolicyKind::HybridTier);
    let standard = count_lines(PolicyKind::HybridTierUnblocked);
    assert!(
        blocked < standard,
        "blocked {blocked} lines vs standard {standard}"
    );
}
