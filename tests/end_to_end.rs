//! Cross-crate integration tests: whole simulations through the public API.

use hybridtier::prelude::*;

fn run_zipf(kind: PolicyKind, ratio: TierRatio, ops: u64, seed: u64) -> SimReport {
    let mut w = ZipfPageWorkload::new(4_000, 0.99, ops, seed);
    let pages = w.footprint_pages(PageSize::Base4K);
    let tier_cfg = if kind == PolicyKind::AllFast {
        TierConfig::all_fast(pages, PageSize::Base4K)
    } else {
        TierConfig::for_footprint(pages, ratio, PageSize::Base4K)
    };
    let mut policy = build_policy(kind, &tier_cfg);
    Engine::new(SimConfig::default()).run(&mut w, policy.as_mut(), tier_cfg)
}

/// The headline end-to-end property: on a skewed workload every adaptive
/// tiering system beats static first-touch placement, and the all-fast
/// configuration bounds them all.
#[test]
fn tiering_systems_land_between_bounds() {
    let upper = run_zipf(PolicyKind::AllFast, TierRatio::OneTo8, 300_000, 5);
    let lower = run_zipf(PolicyKind::FirstTouch, TierRatio::OneTo8, 300_000, 5);
    assert!(upper.sim_ns < lower.sim_ns, "bounds inverted");
    for kind in [PolicyKind::HybridTier, PolicyKind::Memtis, PolicyKind::Arc] {
        let r = run_zipf(kind, TierRatio::OneTo8, 300_000, 5);
        assert!(
            r.sim_ns >= upper.sim_ns,
            "{} beat the all-fast bound",
            r.policy
        );
        assert!(
            r.fast_hit_frac > lower.fast_hit_frac,
            "{} did not improve on first-touch placement",
            r.policy
        );
    }
}

/// More fast-tier memory never hurts (within a policy, same workload).
#[test]
fn more_fast_tier_is_monotone_for_hybridtier() {
    let r16 = run_zipf(PolicyKind::HybridTier, TierRatio::OneTo16, 300_000, 9);
    let r4 = run_zipf(PolicyKind::HybridTier, TierRatio::OneTo4, 300_000, 9);
    assert!(
        r4.fast_hit_frac > r16.fast_hit_frac,
        "1:4 ({}) should hit fast tier more than 1:16 ({})",
        r4.fast_hit_frac,
        r16.fast_hit_frac
    );
    assert!(r4.sim_ns < r16.sim_ns);
}

/// Reports are byte-stable across runs: the whole stack (workload RNG,
/// sampler, CBF hashing, policy state machines) is deterministic.
#[test]
fn full_stack_determinism() {
    let a = run_zipf(PolicyKind::HybridTier, TierRatio::OneTo8, 100_000, 3);
    let b = run_zipf(PolicyKind::HybridTier, TierRatio::OneTo8, 100_000, 3);
    assert_eq!(a.sim_ns, b.sim_ns);
    assert_eq!(a.latency.p50_ns, b.latency.p50_ns);
    assert_eq!(a.migrations, b.migrations);
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.timeline.len(), b.timeline.len());
}

/// Different seeds produce different (but sane) runs.
#[test]
fn seeds_matter_but_shape_holds() {
    let a = run_zipf(PolicyKind::HybridTier, TierRatio::OneTo8, 200_000, 1);
    let b = run_zipf(PolicyKind::HybridTier, TierRatio::OneTo8, 200_000, 2);
    assert_ne!(a.sim_ns, b.sim_ns, "seeds should perturb the run");
    let ratio = a.sim_ns as f64 / b.sim_ns as f64;
    assert!(
        (0.8..1.25).contains(&ratio),
        "seed variance too large: {ratio}"
    );
}

/// The suite builder wires every workload into the engine without panics and
/// with plausible outputs.
#[test]
fn every_suite_workload_simulates() {
    for id in WorkloadId::ALL {
        let cfg = SimConfig::default().with_max_ops(20_000);
        let report = run_suite_experiment(id, PolicyKind::HybridTier, TierRatio::OneTo8, &cfg, 7);
        assert!(report.ops > 0, "{id:?} ran no ops");
        assert!(report.accesses >= report.ops, "{id:?} ops without accesses");
        assert!(report.sim_ns > 0);
        assert!(
            report.fast_hit_frac >= 0.0 && report.fast_hit_frac <= 1.0,
            "{id:?} bad hit fraction"
        );
    }
}

/// Huge-page mode works end to end and tracks at 2 MiB granularity.
#[test]
fn huge_page_mode_runs() {
    let cfg = SimConfig::default().with_max_ops(50_000).with_huge_pages();
    let report = run_suite_experiment(
        WorkloadId::CdnCacheLib,
        PolicyKind::HybridTier,
        TierRatio::OneTo4,
        &cfg,
        7,
    );
    assert!(report.ops > 0);
    assert!(
        report.migrations.promotions < 10_000,
        "2MiB pages migrate rarely"
    );
}

/// Cache simulation attributes misses to both sources and the tiering
/// fraction is sane.
#[test]
fn cache_attribution_end_to_end() {
    let cfg = SimConfig::default().with_max_ops(100_000).with_cache_sim();
    let report = run_suite_experiment(
        WorkloadId::CdnCacheLib,
        PolicyKind::Memtis,
        TierRatio::OneTo4,
        &cfg,
        7,
    );
    let stats = report.cache.expect("cache sim enabled");
    assert!(stats.l1.by(Source::App).accesses() > 0);
    assert!(stats.l1.by(Source::Tiering).accesses() > 0);
    let frac = stats.llc.tiering_miss_fraction();
    assert!(
        (0.0..=0.9).contains(&frac),
        "tiering LLC miss fraction {frac} out of plausible range"
    );
}

/// The momentum ablation (paper Figure 15) is wired: disabling momentum
/// changes behaviour on a churning workload.
#[test]
fn momentum_ablation_changes_behaviour() {
    let mk = || ZipfPageWorkload::new(4_000, 0.99, 400_000, 11).with_shift(20_000_000, 0.9);
    let pages = mk().footprint_pages(PageSize::Base4K);
    let tier_cfg = TierConfig::for_footprint(pages, TierRatio::OneTo16, PageSize::Base4K);

    let mut w1 = mk();
    let mut full = build_policy(PolicyKind::HybridTier, &tier_cfg);
    let r_full = Engine::new(SimConfig::default()).run(&mut w1, full.as_mut(), tier_cfg);

    let mut w2 = mk();
    let mut freq_only = build_policy(PolicyKind::HybridTierFreqOnly, &tier_cfg);
    let r_freq = Engine::new(SimConfig::default()).run(&mut w2, freq_only.as_mut(), tier_cfg);

    assert_ne!(r_full.sim_ns, r_freq.sim_ns);
    assert_eq!(r_freq.policy, "HybridTier-onlyFreqCBF");
}

/// The parallel scenario runner through the facade: a sweep over suite
/// workloads is deterministic, order-independent, and identical to serial
/// execution — and a scenario's report matches a direct `Engine::run` of
/// the same triple.
#[test]
fn parallel_sweep_matches_serial_and_direct_runs() {
    let matrix = || {
        ScenarioMatrix::new(SimConfig::default().with_max_ops(20_000), 7)
            .workloads([WorkloadId::CdnCacheLib, WorkloadId::Silo])
            .ratios([TierRatio::OneTo8])
            .policies([PolicyKind::HybridTier, PolicyKind::Memtis, PolicyKind::Tpp])
            .fixed_seed()
            .build()
    };
    let parallel = SweepRunner::new(4).run(matrix());
    let serial = SweepRunner::serial().run(matrix());
    assert_eq!(parallel.results.len(), 6);
    assert!(parallel.same_outcomes(&serial), "parallel != serial");

    // Reversed submission order: per-label outcomes unchanged.
    let mut reversed = matrix();
    reversed.reverse();
    let reordered = SweepRunner::new(4).run(reversed);
    for r in &serial.results {
        let other = reordered.find(&r.label).expect("label present");
        assert!(r.same_outcome(other), "{} diverged on reorder", r.label);
    }

    // A sweep cell reproduces a direct engine run of the same triple.
    let direct = run_suite_experiment(
        WorkloadId::Silo,
        PolicyKind::HybridTier,
        TierRatio::OneTo8,
        &SimConfig::default().with_max_ops(20_000),
        7,
    );
    let cell = &serial
        .cell(WorkloadId::Silo, TierRatio::OneTo8, PolicyKind::HybridTier)
        .expect("cell present")
        .report;
    assert_eq!(cell, &direct, "runner diverged from direct engine run");
}
